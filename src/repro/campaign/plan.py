"""Campaign planning: recipes in, a deduplicated and seeded plan out.

The paper's title promises *systematic* resilience testing; Section 9
sketches generating recipes straight from the application graph.  The
planner turns that sketch into an executable artifact: it expands
:func:`~repro.core.autogen.generate_recipes` over a deployment factory's
logical graph, merges in operator-supplied recipes, drops duplicates
(two recipes staging the same scenarios and asserting the same checks
test nothing new), orders what remains by how much a failure there
would hurt, and stamps every entry with a deterministic per-recipe
seed — the property that makes a whole campaign reproducible from a
single integer.

A :class:`CampaignPlan` is pure data: nothing is deployed or executed
until a :class:`~repro.campaign.runner.CampaignRunner` takes it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

from repro.core.autogen import EdgeAnnotation, generate_recipes
from repro.core.recipe import Recipe
from repro.errors import CampaignError
from repro.microservice.app import Application

__all__ = [
    "LoadSpec",
    "PlannedRecipe",
    "CampaignPlan",
    "plan_campaign",
    "derive_seed",
    "recipe_signature",
    "scenario_target",
]

#: Zero-argument callable producing a fresh :class:`Application`; every
#: worker materializes its own deployments from it, which is what keeps
#: parallel recipe executions fully isolated from each other.
DeploymentFactory = _t.Callable[[], Application]

#: Execution order among patterns: hard-failure probes first (a missing
#: circuit breaker is the worst finding), slow-failure probes after.
PATTERN_RANK = {
    "crash": 0,
    "partition": 1,
    "overload": 2,
    "retry_storm": 3,
    "resource_exhaustion": 4,
    "hang": 5,
    "gray_failure": 6,
    "degrade": 7,
    "misconfiguration": 8,
    # Controls run last: they calibrate the checks, not the service.
    "noop_control": 98,
}


def derive_seed(campaign_seed: int, recipe_name: str, attempt: int = 0) -> int:
    """Deterministic per-recipe (and per-rerun-attempt) seed.

    Hash-derived rather than sequential so inserting or reordering plan
    entries never perturbs the seed — and therefore the outcome — of
    any other recipe.
    """
    text = f"{campaign_seed}/{recipe_name}/{attempt}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def recipe_signature(recipe: Recipe) -> tuple:
    """Order-insensitive identity of what a recipe stages and asserts."""
    scenarios = tuple(sorted(scenario.describe() for scenario in recipe.scenarios))
    checks = tuple(sorted(check.name for check in recipe.checks))
    return (scenarios, checks)


def scenario_target(scenario: _t.Any) -> str:
    """The faulted service a scenario aims at, best effort.

    Service-scoped scenarios (Crash, Hang, Overload, Degrade,
    FakeSuccess) expose ``service``; edge primitives expose ``dst``;
    Disconnect exposes ``service2``.  Cut-style scenarios (partition)
    have no single target and report ``"*"``.
    """
    for attr in ("service", "dst", "service2"):
        value = getattr(scenario, attr, None)
        if isinstance(value, str):
            return value
    return "*"


@dataclasses.dataclass(frozen=True)
class LoadSpec:
    """How a worker drives test load while a recipe's faults are live."""

    #: Service the campaign's traffic source fronts (the user-facing entry).
    entry: str
    requests: int = 20
    think_time: float = 0.05
    uri: str = "/"
    source_name: str = "user"


@dataclasses.dataclass
class PlannedRecipe:
    """One executable unit of a campaign."""

    #: Stable position in the plan; results are reported in this order
    #: no matter which worker ran the recipe when.
    index: int
    recipe: Recipe
    #: Deployment seed for this recipe's isolated deployment.
    seed: int
    #: Scenario kind of the primary (first) staged scenario.
    pattern: str
    #: Service the primary scenario faults.
    service: str
    load: LoadSpec
    #: Virtual seconds to idle after the load, letting retries/backoffs
    #: and the log pipeline settle before the failure window closes.
    settle: float = 5.0

    @property
    def name(self) -> str:
        """The underlying recipe's name (unique within a plan)."""
        return self.recipe.name


@dataclasses.dataclass
class CampaignPlan:
    """An ordered, deduplicated, seeded set of recipes to execute."""

    name: str
    app: str
    seed: int
    entries: list[PlannedRecipe]
    #: Recipes dropped because another entry had the same signature.
    deduplicated: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> _t.Iterator[PlannedRecipe]:
        return iter(self.entries)

    def limit(self, max_recipes: int) -> "CampaignPlan":
        """A truncated copy keeping the first ``max_recipes`` entries
        (they are already priority-ordered) — the smoke-test fast path."""
        if max_recipes < 1:
            raise CampaignError(f"max_recipes must be >= 1, got {max_recipes}")
        return dataclasses.replace(self, entries=self.entries[:max_recipes])

    def summary(self) -> str:
        """One-paragraph description for CLI output and logs."""
        by_pattern: dict[str, int] = {}
        for entry in self.entries:
            by_pattern[entry.pattern] = by_pattern.get(entry.pattern, 0) + 1
        patterns = ", ".join(
            f"{pattern}={count}"
            for pattern, count in sorted(
                by_pattern.items(), key=lambda kv: (PATTERN_RANK.get(kv[0], 99), kv[0])
            )
        )
        return (
            f"campaign {self.name!r} on {self.app!r}: {len(self.entries)} recipes"
            f" ({patterns}), seed={self.seed}, {self.deduplicated} duplicates dropped"
        )


def plan_campaign(
    factory: DeploymentFactory,
    *,
    name: _t.Optional[str] = None,
    seed: int = 0,
    annotations: _t.Optional[dict[str, EdgeAnnotation]] = None,
    extra_recipes: _t.Sequence[Recipe] = (),
    entry: _t.Optional[str] = None,
    requests: int = 20,
    think_time: float = 0.05,
    settle: float = 5.0,
    max_recipes: _t.Optional[int] = None,
) -> CampaignPlan:
    """Expand, merge, deduplicate, prioritize, and seed a campaign.

    ``extra_recipes`` are operator-written recipes; they take precedence
    over auto-generated ones when both carry the same signature, so an
    operator can refine the generated test for one edge without the
    campaign running both variants.

    Ordering: high-criticality targets (per ``annotations``) first,
    then hard-failure patterns before slow-failure ones
    (:data:`PATTERN_RANK`), then by target service and name for
    stability.  Per-recipe seeds derive from ``seed`` and the recipe
    name via :func:`derive_seed`.
    """
    application = factory()
    graph = application.logical_graph()
    services = set(graph.services())

    if entry is None:
        entries = graph.entry_services()
        if not entries:
            raise CampaignError(
                f"application {application.name!r} has no entry services;"
                " pass entry= explicitly"
            )
        entry = entries[0]
    elif entry not in services:
        raise CampaignError(
            f"unknown entry service {entry!r}; services: {', '.join(sorted(services))}"
        )

    candidates = list(extra_recipes) + generate_recipes(graph, annotations)

    seen_names: set[str] = set()
    seen_signatures: set[tuple] = set()
    deduplicated = 0
    unique: list[Recipe] = []
    for recipe in candidates:
        if recipe.name in seen_names:
            raise CampaignError(
                f"duplicate recipe name {recipe.name!r} in campaign input;"
                " names identify outcomes in scorecards and diffs"
            )
        seen_names.add(recipe.name)
        signature = recipe_signature(recipe)
        if signature in seen_signatures:
            deduplicated += 1
            continue
        seen_signatures.add(signature)
        for scenario in recipe.scenarios:
            target = scenario_target(scenario)
            if target != "*" and target not in services:
                raise CampaignError(
                    f"recipe {recipe.name!r} faults unknown service {target!r}"
                )
        unique.append(recipe)

    annotations = annotations or {}

    def sort_key(recipe: Recipe) -> tuple:
        primary = recipe.scenarios[0]
        target = scenario_target(primary)
        criticality = annotations.get(target, EdgeAnnotation()).criticality
        return (
            0 if criticality == "high" else 1,
            PATTERN_RANK.get(primary.kind, 99),
            target,
            recipe.name,
        )

    ordered = sorted(unique, key=sort_key)
    load = LoadSpec(entry=entry, requests=requests, think_time=think_time)
    planned = [
        PlannedRecipe(
            index=index,
            recipe=recipe,
            seed=derive_seed(seed, recipe.name),
            pattern=recipe.scenarios[0].kind,
            service=scenario_target(recipe.scenarios[0]),
            load=load,
            settle=settle,
        )
        for index, recipe in enumerate(ordered)
    ]
    plan = CampaignPlan(
        name=name or f"campaign-{application.name}",
        app=application.name,
        seed=seed,
        entries=planned,
        deduplicated=deduplicated,
    )
    if max_recipes is not None:
        plan = plan.limit(max_recipes)
    return plan
