"""Campaign engine: fleet execution of auto-generated recipe suites.

The layer above the single-recipe control plane: a **planner** expands
:func:`~repro.core.autogen.generate_recipes` (plus operator recipes)
into a deduplicated, prioritized, per-recipe-seeded
:class:`CampaignPlan`; a **runner** executes the plan across N parallel
workers — threads or spawn-isolated processes
(``backend="processes"``, the multi-core path) — each recipe on its
own freshly-built deployment so outcomes are deterministic,
worker-count-independent, and backend-independent; the **results layer**
folds outcomes into a per-service/per-pattern :class:`Scorecard`,
reruns failures with perturbed seeds to separate broken from flaky
behaviour, and :func:`diff_campaigns` compares two runs for regression
detection; **io** dumps/loads the whole thing as JSON-lines.

Quick start::

    from repro.apps import build_tree_app
    from repro.campaign import CampaignRunner, plan_campaign

    plan = plan_campaign(lambda: build_tree_app(3), seed=42)
    result = CampaignRunner(lambda: build_tree_app(3), workers=4).run(plan)
    print(result.scorecard().text())
"""

from repro.campaign.diff import CampaignDiff, StatusChange, diff_campaigns
from repro.campaign.fleet import (
    BACKENDS,
    ProcessPool,
    ProcessWorkerSpec,
    resolve_workers,
    run_fleet,
)
from repro.campaign.io import dump_jsonl, dumps, load_jsonl, loads
from repro.campaign.plan import (
    CampaignPlan,
    LoadSpec,
    PlannedRecipe,
    derive_seed,
    plan_campaign,
    recipe_signature,
    scenario_target,
)
from repro.campaign.results import CampaignResult, CheckOutcome, RecipeOutcome
from repro.campaign.runner import CampaignRunner, RecipeExecutor
from repro.campaign.scorecard import PatternScore, Scorecard
from repro.campaign.shm import RESULT_TRANSPORTS, resolve_result_transport

__all__ = [
    "BACKENDS",
    "CampaignDiff",
    "CampaignPlan",
    "CampaignResult",
    "CampaignRunner",
    "CheckOutcome",
    "LoadSpec",
    "PatternScore",
    "PlannedRecipe",
    "ProcessPool",
    "ProcessWorkerSpec",
    "RESULT_TRANSPORTS",
    "RecipeExecutor",
    "RecipeOutcome",
    "Scorecard",
    "StatusChange",
    "derive_seed",
    "diff_campaigns",
    "dump_jsonl",
    "dumps",
    "load_jsonl",
    "loads",
    "plan_campaign",
    "recipe_signature",
    "resolve_result_transport",
    "resolve_workers",
    "run_fleet",
    "scenario_target",
]
