"""Generic worker-fleet: drain a job queue through N threads or processes.

Extracted from :class:`~repro.campaign.runner.CampaignRunner` so every
parallel harness in the codebase (campaigns, the differential fuzzer)
shares one fleet implementation with one contract:

* Jobs are independent: a result depends only on the job payload,
  never on which worker ran it, how many workers there were, which
  backend executed it, or the drain order.  The fleet preserves this
  by keying results by job *position* — callers get back exactly one
  slot per submitted job.
* Two interchangeable backends:

  - ``"threads"`` — workers are threads pulling from a shared queue.
    The simulated control/data plane is pure CPU, so under the GIL
    thread workers canNOT speed up compute-bound suites; they exist to
    overlap anything that genuinely waits on the wall clock (pacing
    floors, operator I/O) at zero serialization cost.
  - ``"processes"`` — workers are spawn-started interpreter processes
    (:class:`ProcessWorkerSpec`) managed by a :class:`ProcessPool`.
    Job payloads are serialized to the worker — up to ``batch_size``
    jobs per pipe message, amortizing the dispatch round-trip for
    cheap jobs — executed in an isolated interpreter, and each compact
    serialized result streams back to the parent as it finishes.  This
    is the backend that parallelizes CPU-bound work across cores; it
    additionally contains worker *crashes*: jobs whose process dies
    are converted to failed results via ``on_crash`` and the dead
    worker is replaced, so a crash can neither hang the fleet nor
    silently shrink it.  Callers with several waves of jobs can hold a
    :class:`ProcessPool` open across waves and reuse warm workers
    instead of paying the interpreter-spawn tax per wave.

* ``stop_when`` implements fail-fast: once any completed job's result
  satisfies it, no further jobs are dispatched.  Jobs already running
  finish normally; undispatched jobs are simply absent from the result
  map.  With the thread backend, an optional ``stop_signal`` event is
  set at the same moment so paced executors can cut their sleep short.

``execute`` / ``ProcessWorkerSpec.target`` must never raise — wrap
failures into the result type, as
:class:`~repro.campaign.runner.RecipeExecutor` does — because a raised
exception would otherwise take a worker down with it.  (The process
backend survives even that, via the crash path, but a crash-converted
result carries less detail than a properly wrapped one.)
"""

from __future__ import annotations

import collections
import dataclasses
import os
import threading
import time
import typing as _t

from repro.campaign.shm import resolve_result_transport
from repro.errors import CampaignError

__all__ = [
    "BACKENDS",
    "ProcessPool",
    "ProcessWorkerSpec",
    "resolve_workers",
    "run_fleet",
]

#: The execution backends every fleet-driven harness accepts.
BACKENDS = ("threads", "processes")

R = _t.TypeVar("R")
J = _t.TypeVar("J")


def resolve_workers(workers: _t.Union[int, str]) -> int:
    """Resolve a worker-count knob to a concrete fleet size.

    ``"auto"`` (the CLI default) sizes the fleet to the machine: one
    worker per CPU core.  Integers (or integer strings, as argparse
    delivers them) pass through validated.
    """
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        value = int(workers)
    except (TypeError, ValueError):
        raise CampaignError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        ) from None
    if value < 1:
        raise CampaignError(f"workers must be >= 1, got {value}")
    return value


@dataclasses.dataclass(frozen=True)
class ProcessWorkerSpec:
    """How the ``processes`` backend runs one job in a worker process.

    ``target(worker_id, job, context)`` must be an *importable*
    (module-level) callable: spawn-started workers re-import it by
    qualified name, so lambdas and closures are rejected by pickle.
    ``context`` is pickled once per worker and handed to every call —
    the place for the deployment factory, executor knobs, or an app
    registry.  ``on_crash(job, detail)`` runs in the *parent* when a
    worker process dies (or its result cannot be shipped back) while
    holding ``job``; it must build the backend's failed-result shape.
    """

    target: _t.Callable[[int, _t.Any, _t.Any], _t.Any]
    context: _t.Any = None
    on_crash: _t.Optional[_t.Callable[[_t.Any, str], _t.Any]] = None
    #: multiprocessing start method; spawn is the only one that is safe
    #: on every platform and never inherits parent state.
    start_method: str = "spawn"


def run_fleet(
    jobs: _t.Sequence[J],
    execute: _t.Optional[_t.Callable[[int, J], R]],
    *,
    workers: _t.Union[int, str] = 1,
    stop_when: _t.Optional[_t.Callable[[R], bool]] = None,
    backend: str = "threads",
    process_spec: _t.Optional[ProcessWorkerSpec] = None,
    stop_signal: _t.Optional[threading.Event] = None,
    batch_size: int = 1,
    result_transport: _t.Optional[str] = None,
) -> dict[int, R]:
    """Drain ``jobs`` through a fleet of ``workers`` threads or processes.

    With the (default) thread backend, ``execute(worker_id, job)`` runs
    each job in-process.  With ``backend="processes"``, ``execute`` is
    unused, ``process_spec`` describes the spawn-side entry point, and
    up to ``batch_size`` jobs ship per dispatch (results still stream
    back one per job).  ``result_transport`` picks how process results
    come home — ``"pickle"`` over the pipe (the reference lane) or
    ``"shm"`` through per-worker shared-memory slabs; ``None`` defers
    to ``REPRO_RESULT_TRANSPORT``.  Thread workers share the parent's
    heap, so the knob is validated but has no effect there.  Either way
    results come back keyed by the job's position in ``jobs``;
    positions missing from the map were never dispatched (fail-fast
    stopped the fleet first).
    """
    if backend not in BACKENDS:
        raise CampaignError(
            f"unknown fleet backend {backend!r}; expected one of {BACKENDS}"
        )
    transport = resolve_result_transport(result_transport)
    fleet_size = resolve_workers(workers)
    if backend == "processes":
        if process_spec is None:
            raise CampaignError("backend='processes' requires a process_spec")
        pool = ProcessPool(
            process_spec,
            size=fleet_size,
            batch_size=batch_size,
            result_transport=transport,
        )
        try:
            return pool.run(jobs, stop_when=stop_when)
        finally:
            pool.close()
    if execute is None:
        raise CampaignError("backend='threads' requires an execute callable")
    return _run_thread_fleet(
        jobs,
        execute,
        workers=fleet_size,
        stop_when=stop_when,
        stop_signal=stop_signal,
    )


# -- thread backend -----------------------------------------------------------


def _run_thread_fleet(
    jobs: _t.Sequence[J],
    execute: _t.Callable[[int, J], R],
    *,
    workers: int,
    stop_when: _t.Optional[_t.Callable[[R], bool]],
    stop_signal: _t.Optional[threading.Event],
) -> dict[int, R]:
    queue: collections.deque = collections.deque(enumerate(jobs))
    lock = threading.Lock()
    # The caller may supply the stop event so in-flight executors (e.g.
    # a paced recipe sleeping out its wall-clock floor) observe
    # fail-fast the moment it trips instead of at their next dispatch.
    stop = stop_signal if stop_signal is not None else threading.Event()
    results: dict[int, R] = {}

    def worker(worker_id: int) -> None:
        while True:
            with lock:
                if stop.is_set() or not queue:
                    return
                key, job = queue.popleft()
            result = execute(worker_id, job)
            with lock:
                results[key] = result
            if stop_when is not None and stop_when(result):
                stop.set()

    fleet_size = max(1, min(workers, len(jobs)))
    if fleet_size == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"fleet-worker-{i}", daemon=True
            )
            for i in range(fleet_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return results


# -- process backend ----------------------------------------------------------


def _process_worker_main(
    conn, target, context, worker_id: int, result_transport: str = "pickle"
) -> None:
    """Loop of one worker process: recv a batch of jobs, run, stream results.

    Runs in the child.  Each message from the parent is a list of
    ``(key, job)`` pairs — batching amortizes the per-dispatch pickle
    and pipe round-trip — and ``None`` is the shutdown signal.  Results
    stream back one ``(key, kind, payload)`` tuple per job as each
    finishes, so crash attribution and fail-fast stay per-job even when
    dispatch is batched.  A result that cannot be pickled is reported
    as an error message rather than killing the worker, so one odd
    payload cannot eat the rest of the queue.

    With ``result_transport="shm"`` the worker encodes each successful
    result (:mod:`repro.campaign.codec`) into its shared-memory slab
    and sends only the tiny ``(key, "shm", SlabRef)`` header; the slab
    rewinds at each batch boundary, by which point the parent has
    consumed every earlier record.  Any slab or codec trouble degrades
    that one result to the ordinary pickle send — the shm lane is an
    optimization, never a new failure mode.  The codec's shape/string
    state commits only after the slab write *and* the header send both
    succeed (``encode_pending``), so a degraded result leaves the
    parent's paired decoder exactly in sync: it never misses a codec
    message it was supposed to see.
    """
    writer = encoder = None
    if result_transport == "shm":
        try:
            from repro.campaign.codec import ResultEncoder
            from repro.campaign.shm import SlabWriter

            writer = SlabWriter()
            encoder = ResultEncoder()
        except Exception:  # noqa: BLE001 - no shm here: use the pipe
            writer = None
    try:
        while True:
            batch = conn.recv()
            if batch is None:
                return
            if writer is not None:
                writer.new_batch()
            for key, job in batch:
                try:
                    payload = (key, "ok", target(worker_id, job, context))
                except BaseException as exc:  # noqa: BLE001 - ship, don't die
                    payload = (key, "error", f"{type(exc).__name__}: {exc}")
                if writer is not None and payload[1] == "ok":
                    try:
                        body, commit = encoder.encode_pending(payload[2])
                        ref = writer.write(body)
                        conn.send((key, "shm", ref))
                        # Only now may the codec state advance: had the
                        # write or send above raised, the parent's
                        # decoder would never see this message, and a
                        # committed-but-undelivered message desyncs the
                        # FIFO pair for every later result.
                        commit()
                        continue
                    except Exception:  # noqa: BLE001 - degrade to the pipe
                        pass
                try:
                    conn.send(payload)
                except Exception as exc:  # noqa: BLE001 - e.g. unpicklable result
                    conn.send((key, "error", f"result not serializable: {exc}"))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if writer is not None:
            writer.close()
        conn.close()


class _ProcessWorker:
    """Parent-side handle of one spawned worker process."""

    __slots__ = (
        "worker_id",
        "process",
        "conn",
        "outstanding",
        "decoder",
        "slab_names",
        "current_slab",
    )

    def __init__(
        self,
        ctx,
        spec: ProcessWorkerSpec,
        worker_id: int,
        result_transport: str = "pickle",
    ) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_process_worker_main,
            args=(
                child_conn,
                spec.target,
                spec.context,
                worker_id,
                result_transport,
            ),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        #: key -> job for every dispatched-but-unanswered job.  Results
        #: stream back per job, so a crash costs exactly the unanswered
        #: slice of the last batch — with ``batch_size=1`` that is the
        #: classic exactly-one-job guarantee.
        self.outstanding: dict[int, _t.Any] = {}
        #: The codec's stateful parent half and every slab name this
        #: worker has announced — both die with the worker: a
        #: replacement starts a fresh codec stream on a fresh slab.
        self.decoder = None
        self.slab_names: set[str] = set()
        #: The segment the worker's most recent ref named.  Refs arrive
        #: in FIFO order, so a ref naming a *different* segment proves
        #: every record on the previous one has been consumed — the
        #: parent can drop its mapping of the rotated-away slab.
        self.current_slab: _t.Optional[str] = None
        if result_transport == "shm":
            from repro.campaign.codec import ResultDecoder

            self.decoder = ResultDecoder()

    @property
    def busy(self) -> bool:
        return bool(self.outstanding)

    def send_batch(self, batch: list[tuple[int, _t.Any]]) -> None:
        self.outstanding.update(batch)
        self.conn.send(batch)

    def shut_down(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError, ValueError):
            pass

    def reap(self, timeout: float = 5.0) -> None:
        """Escalating teardown: join politely, then ``terminate()``,
        then — the last resort a hung or signal-blocking child cannot
        dodge — ``kill()``.  A straggler can therefore never stall
        interpreter exit for more than ``timeout`` + two grace joins.
        """
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(1.0)
        if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
            self.process.kill()
            self.process.join(1.0)


class ProcessPool:
    """A warm, reusable fleet of spawn-started worker processes.

    Spawning an interpreter and re-importing the target costs far more
    than most individual jobs, so the pool keeps its workers alive
    between :meth:`run` calls: callers issuing several waves of jobs
    (a campaign's main pass followed by its flake-detection reruns,
    successive fuzz generations) reuse the same warm interpreters
    instead of paying the spawn tax per wave.  Dispatch is batched —
    up to ``batch_size`` jobs per pipe message — amortizing
    pickle/pipe round-trips for cheap jobs, while results still stream
    back one per job so crash attribution and fail-fast stay precise.

    The pool is also the shutdown-hardening point: :meth:`close` asks
    every worker to exit, joins within a bounded timeout, and escalates
    terminate -> kill for stragglers, so a hung worker can never wedge
    the parent on exit.
    """

    def __init__(
        self,
        spec: ProcessWorkerSpec,
        size: int,
        *,
        batch_size: int = 1,
        result_transport: _t.Optional[str] = None,
    ) -> None:
        import multiprocessing

        if size < 1:
            raise CampaignError(f"pool size must be >= 1, got {size}")
        if batch_size < 1:
            raise CampaignError(f"batch_size must be >= 1, got {batch_size}")
        self.spec = spec
        self.size = size
        self.batch_size = batch_size
        self.result_transport = resolve_result_transport(result_transport)
        self._ctx = multiprocessing.get_context(spec.start_method)
        self._workers: list[_ProcessWorker] = []
        self._next_id = 0
        self._closed = False
        self._reader = None

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def workers_alive(self) -> int:
        """Live worker processes currently held warm by the pool."""
        return sum(1 for worker in self._workers if worker.process.is_alive())

    def _spawn(self) -> _ProcessWorker:
        worker = _ProcessWorker(
            self._ctx, self.spec, self._next_id, self.result_transport
        )
        self._next_id += 1
        self._workers.append(worker)
        return worker

    def _crash_result(self, job: _t.Any, detail: str) -> _t.Any:
        if self.spec.on_crash is None:
            raise CampaignError(
                f"fleet worker process died ({detail}) and no on_crash"
                " handler was provided"
            )
        return self.spec.on_crash(job, detail)

    def _resolve_shm(self, worker: _ProcessWorker, ref) -> _t.Any:
        """Decode one shm-lane result straight out of the worker's slab."""
        if self._reader is None:
            from repro.campaign.shm import SlabReader

            self._reader = SlabReader()
        # Track the name *before* reading: if the very first read from
        # a fresh segment fails, the retire path must still know to
        # unlink the segment the reader just attached.
        worker.slab_names.add(ref.name)
        if worker.current_slab is not None and worker.current_slab != ref.name:
            # The worker rotated to a bigger slab.  Refs are FIFO, so
            # every record on the old segment has been consumed; drop
            # our mapping now instead of holding the (soon unlinked)
            # segment's memory until pool close.  The name stays in
            # ``slab_names`` — the segment itself may outlive this if
            # the worker dies before its next batch-boundary cleanup.
            self._reader.forget(worker.current_slab)
        worker.current_slab = ref.name
        view = self._reader.read(ref)
        try:
            return worker.decoder.decode(view)
        finally:
            view.release()

    def _release_slabs(self, worker: _ProcessWorker) -> None:
        """Drop (and best-effort unlink) a reaped worker's segments.

        A cleanly shut-down worker unlinks its own slabs; this covers
        crashed workers, whose segments would otherwise survive until
        the resource tracker's exit sweep.
        """
        worker.current_slab = None
        if self._reader is None or not worker.slab_names:
            worker.slab_names.clear()
            return
        for name in worker.slab_names:
            self._reader.unlink(name)
        worker.slab_names.clear()

    def run(
        self,
        jobs: _t.Sequence[J],
        *,
        stop_when: _t.Optional[_t.Callable[[R], bool]] = None,
    ) -> dict[int, R]:
        """Drain ``jobs`` through the pool; results keyed by position.

        Workers survive the call: a subsequent :meth:`run` reuses them
        warm.  A worker whose pipe hits EOF mid-batch died holding
        exactly its unanswered jobs; those become ``on_crash`` results
        and — while undispatched work remains — a replacement worker is
        spawned, keeping the pool at full strength.
        """
        from multiprocessing.connection import wait as _wait_connections

        if self._closed:
            raise CampaignError("cannot run jobs on a closed ProcessPool")
        results: dict[int, R] = {}
        if not jobs:
            return results
        queue: collections.deque = collections.deque(enumerate(jobs))
        stopping = False

        # Cull workers that died while idle between runs, then bring
        # the pool up to strength (never more workers than jobs).
        for worker in list(self._workers):
            if not worker.busy and not worker.process.is_alive():
                worker.reap(timeout=0.1)
                self._workers.remove(worker)
        while len(self._workers) < min(self.size, len(jobs)):
            self._spawn()

        def dispatch(worker: _ProcessWorker) -> None:
            batch = []
            while queue and len(batch) < self.batch_size:
                batch.append(queue.popleft())
            if batch:
                worker.send_batch(batch)

        for worker in self._workers:
            if queue and not worker.busy:
                dispatch(worker)

        while any(worker.busy for worker in self._workers):
            ready = _wait_connections(
                [worker.conn for worker in self._workers if worker.busy]
            )
            for worker in list(self._workers):
                if worker.conn not in ready or not worker.busy:
                    continue
                try:
                    key, kind, payload = worker.conn.recv()
                except (EOFError, OSError):
                    # The child died holding the unanswered slice of its
                    # batch: fail those jobs, replace the worker while
                    # there is still work left to do.  EOF can precede
                    # the child becoming reapable, so give it a moment
                    # or the exit code reads as None.
                    worker.process.join(timeout=1.0)
                    exitcode = worker.process.exitcode
                    detail = f"worker process exited with code {exitcode}"
                    for lost_key, lost_job in worker.outstanding.items():
                        results[lost_key] = self._crash_result(lost_job, detail)
                    worker.outstanding.clear()
                    worker.reap(timeout=1.0)
                    self._workers.remove(worker)
                    self._release_slabs(worker)
                    if queue and not stopping:
                        dispatch(self._spawn())
                    continue
                job = worker.outstanding.pop(key)
                if kind == "ok":
                    results[key] = payload
                elif kind == "shm":
                    try:
                        results[key] = self._resolve_shm(worker, payload)
                    except Exception as exc:  # noqa: BLE001 - stale/torn slab
                        # A record that fails generation/CRC/codec checks
                        # means the worker's slab or codec stream can no
                        # longer be trusted; retire it exactly like a
                        # crash, replacement and all.
                        detail = (
                            f"shm result unreadable: {type(exc).__name__}: {exc}"
                        )
                        results[key] = self._crash_result(job, detail)
                        for lost_key, lost_job in worker.outstanding.items():
                            results[lost_key] = self._crash_result(
                                lost_job, detail
                            )
                        worker.outstanding.clear()
                        worker.reap(timeout=1.0)
                        self._workers.remove(worker)
                        self._release_slabs(worker)
                        if queue and not stopping:
                            dispatch(self._spawn())
                        continue
                else:
                    results[key] = self._crash_result(job, payload)
                if (
                    not stopping
                    and stop_when is not None
                    and stop_when(results[key])
                ):
                    stopping = True
                if not worker.busy and queue and not stopping:
                    dispatch(worker)
        return results

    def close(self, timeout: float = 5.0) -> None:
        """Shut the pool down, hard-bounded in wall-clock time.

        Every worker gets the polite shutdown message, then is joined
        against a shared ``timeout`` deadline; anything still alive is
        terminated and, failing that, killed (see
        :meth:`_ProcessWorker.reap`).  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.shut_down()
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.reap(timeout=max(0.1, deadline - time.monotonic()))
        # Workers unlink their slabs on clean shutdown; sweep whatever a
        # crashed or killed one left behind, then drop our mappings.
        for worker in workers:
            self._release_slabs(worker)
        if self._reader is not None:
            self._reader.close()
            self._reader = None
