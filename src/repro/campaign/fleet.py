"""Generic worker-fleet: drain a job queue through N threads or processes.

Extracted from :class:`~repro.campaign.runner.CampaignRunner` so every
parallel harness in the codebase (campaigns, the differential fuzzer)
shares one fleet implementation with one contract:

* Jobs are independent: a result depends only on the job payload,
  never on which worker ran it, how many workers there were, which
  backend executed it, or the drain order.  The fleet preserves this
  by keying results by job *position* — callers get back exactly one
  slot per submitted job.
* Two interchangeable backends:

  - ``"threads"`` — workers are threads pulling from a shared queue.
    The simulated control/data plane is pure CPU, so under the GIL
    thread workers canNOT speed up compute-bound suites; they exist to
    overlap anything that genuinely waits on the wall clock (pacing
    floors, operator I/O) at zero serialization cost.
  - ``"processes"`` — workers are spawn-started interpreter processes
    (:class:`ProcessWorkerSpec`).  Job payloads are serialized to the
    worker, executed in an isolated interpreter, and the compact
    serialized result ships back to the parent.  This is the backend
    that parallelizes CPU-bound work across cores; it additionally
    contains worker *crashes*: a job whose process dies is converted
    to a failed result via ``on_crash`` and the dead worker is
    replaced, so a crash can neither hang the fleet nor silently
    shrink it.

* ``stop_when`` implements fail-fast: once any completed job's result
  satisfies it, no further jobs are dispatched.  Jobs already running
  finish normally; undispatched jobs are simply absent from the result
  map.  With the thread backend, an optional ``stop_signal`` event is
  set at the same moment so paced executors can cut their sleep short.

``execute`` / ``ProcessWorkerSpec.target`` must never raise — wrap
failures into the result type, as
:class:`~repro.campaign.runner.RecipeExecutor` does — because a raised
exception would otherwise take a worker down with it.  (The process
backend survives even that, via the crash path, but a crash-converted
result carries less detail than a properly wrapped one.)
"""

from __future__ import annotations

import collections
import dataclasses
import os
import threading
import typing as _t

from repro.errors import CampaignError

__all__ = [
    "BACKENDS",
    "ProcessWorkerSpec",
    "resolve_workers",
    "run_fleet",
]

#: The execution backends every fleet-driven harness accepts.
BACKENDS = ("threads", "processes")

R = _t.TypeVar("R")
J = _t.TypeVar("J")


def resolve_workers(workers: _t.Union[int, str]) -> int:
    """Resolve a worker-count knob to a concrete fleet size.

    ``"auto"`` (the CLI default) sizes the fleet to the machine: one
    worker per CPU core.  Integers (or integer strings, as argparse
    delivers them) pass through validated.
    """
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        value = int(workers)
    except (TypeError, ValueError):
        raise CampaignError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        ) from None
    if value < 1:
        raise CampaignError(f"workers must be >= 1, got {value}")
    return value


@dataclasses.dataclass(frozen=True)
class ProcessWorkerSpec:
    """How the ``processes`` backend runs one job in a worker process.

    ``target(worker_id, job, context)`` must be an *importable*
    (module-level) callable: spawn-started workers re-import it by
    qualified name, so lambdas and closures are rejected by pickle.
    ``context`` is pickled once per worker and handed to every call —
    the place for the deployment factory, executor knobs, or an app
    registry.  ``on_crash(job, detail)`` runs in the *parent* when a
    worker process dies (or its result cannot be shipped back) while
    holding ``job``; it must build the backend's failed-result shape.
    """

    target: _t.Callable[[int, _t.Any, _t.Any], _t.Any]
    context: _t.Any = None
    on_crash: _t.Optional[_t.Callable[[_t.Any, str], _t.Any]] = None
    #: multiprocessing start method; spawn is the only one that is safe
    #: on every platform and never inherits parent state.
    start_method: str = "spawn"


def run_fleet(
    jobs: _t.Sequence[J],
    execute: _t.Optional[_t.Callable[[int, J], R]],
    *,
    workers: _t.Union[int, str] = 1,
    stop_when: _t.Optional[_t.Callable[[R], bool]] = None,
    backend: str = "threads",
    process_spec: _t.Optional[ProcessWorkerSpec] = None,
    stop_signal: _t.Optional[threading.Event] = None,
) -> dict[int, R]:
    """Drain ``jobs`` through a fleet of ``workers`` threads or processes.

    With the (default) thread backend, ``execute(worker_id, job)`` runs
    each job in-process.  With ``backend="processes"``, ``execute`` is
    unused and ``process_spec`` describes the spawn-side entry point.
    Either way results come back keyed by the job's position in
    ``jobs``; positions missing from the map were never dispatched
    (fail-fast stopped the fleet first).
    """
    if backend not in BACKENDS:
        raise CampaignError(
            f"unknown fleet backend {backend!r}; expected one of {BACKENDS}"
        )
    fleet_size = resolve_workers(workers)
    if backend == "processes":
        if process_spec is None:
            raise CampaignError("backend='processes' requires a process_spec")
        return _run_process_fleet(
            jobs, process_spec, workers=fleet_size, stop_when=stop_when
        )
    if execute is None:
        raise CampaignError("backend='threads' requires an execute callable")
    return _run_thread_fleet(
        jobs,
        execute,
        workers=fleet_size,
        stop_when=stop_when,
        stop_signal=stop_signal,
    )


# -- thread backend -----------------------------------------------------------


def _run_thread_fleet(
    jobs: _t.Sequence[J],
    execute: _t.Callable[[int, J], R],
    *,
    workers: int,
    stop_when: _t.Optional[_t.Callable[[R], bool]],
    stop_signal: _t.Optional[threading.Event],
) -> dict[int, R]:
    queue: collections.deque = collections.deque(enumerate(jobs))
    lock = threading.Lock()
    # The caller may supply the stop event so in-flight executors (e.g.
    # a paced recipe sleeping out its wall-clock floor) observe
    # fail-fast the moment it trips instead of at their next dispatch.
    stop = stop_signal if stop_signal is not None else threading.Event()
    results: dict[int, R] = {}

    def worker(worker_id: int) -> None:
        while True:
            with lock:
                if stop.is_set() or not queue:
                    return
                key, job = queue.popleft()
            result = execute(worker_id, job)
            with lock:
                results[key] = result
            if stop_when is not None and stop_when(result):
                stop.set()

    fleet_size = max(1, min(workers, len(jobs)))
    if fleet_size == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"fleet-worker-{i}", daemon=True
            )
            for i in range(fleet_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return results


# -- process backend ----------------------------------------------------------


def _process_worker_main(conn, target, context, worker_id: int) -> None:
    """Loop of one worker process: recv job, run, send result.

    Runs in the child.  A ``None`` message is the shutdown signal.  A
    result that cannot be pickled is reported as an error message
    rather than killing the worker, so one odd payload cannot eat the
    rest of the queue.
    """
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            key, job = message
            try:
                payload = (key, "ok", target(worker_id, job, context))
            except BaseException as exc:  # noqa: BLE001 - ship, don't die
                payload = (key, "error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(payload)
            except Exception as exc:  # noqa: BLE001 - e.g. unpicklable result
                conn.send((key, "error", f"result not serializable: {exc}"))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        conn.close()


class _ProcessWorker:
    """Parent-side handle of one spawned worker process."""

    __slots__ = ("worker_id", "process", "conn", "current")

    def __init__(self, ctx, spec: ProcessWorkerSpec, worker_id: int) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_process_worker_main,
            args=(child_conn, spec.target, spec.context, worker_id),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        #: (key, job) currently executing in the child, if any.
        self.current: _t.Optional[tuple[int, _t.Any]] = None

    def send_job(self, key: int, job: _t.Any) -> None:
        self.current = (key, job)
        self.conn.send((key, job))

    def shut_down(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError, ValueError):
            pass

    def reap(self, timeout: float = 5.0) -> None:
        self.conn.close()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(1.0)


def _run_process_fleet(
    jobs: _t.Sequence[J],
    spec: ProcessWorkerSpec,
    *,
    workers: int,
    stop_when: _t.Optional[_t.Callable[[R], bool]],
) -> dict[int, R]:
    """Drain jobs through spawn-started worker processes.

    The parent owns the queue and dispatches one job at a time per
    worker over a dedicated pipe, so crash attribution is exact: a
    worker whose pipe hits EOF mid-job died holding exactly one known
    job.  That job becomes ``on_crash(job, detail)`` and — while work
    remains — a replacement worker is spawned, keeping the fleet at
    full strength.
    """
    import multiprocessing
    from multiprocessing.connection import wait as _wait_connections

    results: dict[int, R] = {}
    if not jobs:
        return results
    ctx = multiprocessing.get_context(spec.start_method)
    queue: collections.deque = collections.deque(enumerate(jobs))
    fleet_size = max(1, min(workers, len(jobs)))
    stopping = False
    finished: list[_ProcessWorker] = []

    def crash_result(job: _t.Any, detail: str) -> R:
        if spec.on_crash is None:
            raise CampaignError(
                f"fleet worker process died ({detail}) and no on_crash"
                " handler was provided"
            )
        return spec.on_crash(job, detail)

    workers_alive: list[_ProcessWorker] = []
    try:
        workers_alive = [
            _ProcessWorker(ctx, spec, worker_id) for worker_id in range(fleet_size)
        ]
        for worker in workers_alive:
            if queue:
                key, job = queue.popleft()
                worker.send_job(key, job)

        while any(worker.current is not None for worker in workers_alive):
            ready = _wait_connections(
                [worker.conn for worker in workers_alive if worker.current is not None]
            )
            for worker in list(workers_alive):
                if worker.conn not in ready or worker.current is None:
                    continue
                key, job = worker.current
                try:
                    got_key, kind, payload = worker.conn.recv()
                except (EOFError, OSError):
                    # The child died mid-job: fail the job, replace the
                    # worker while there is still work left to do.
                    exitcode = worker.process.exitcode
                    results[key] = crash_result(
                        job, f"worker process exited with code {exitcode}"
                    )
                    worker.current = None
                    worker.reap(timeout=1.0)
                    workers_alive.remove(worker)
                    if queue and not stopping:
                        replacement = _ProcessWorker(ctx, spec, worker.worker_id)
                        workers_alive.append(replacement)
                        next_key, next_job = queue.popleft()
                        replacement.send_job(next_key, next_job)
                    continue
                worker.current = None
                if kind == "ok":
                    results[got_key] = payload
                else:
                    results[got_key] = crash_result(job, payload)
                if (
                    not stopping
                    and stop_when is not None
                    and stop_when(results[got_key])
                ):
                    stopping = True
                if queue and not stopping:
                    next_key, next_job = queue.popleft()
                    worker.send_job(next_key, next_job)
                else:
                    worker.shut_down()
                    workers_alive.remove(worker)
                    finished.append(worker)
    finally:
        for worker in workers_alive + finished:
            worker.shut_down()
            worker.reap()
    return results
