"""Generic worker-fleet: drain a job queue through N threads.

Extracted from :class:`~repro.campaign.runner.CampaignRunner` so every
parallel harness in the codebase (campaigns, the differential fuzzer)
shares one fleet implementation with one contract:

* Jobs are independent: a result depends only on the job payload,
  never on which worker ran it, how many workers there were, or the
  drain order.  The fleet preserves this by keying results by job
  *position* — callers get back exactly one slot per submitted job.
* Workers are threads.  The simulated control/data plane is pure CPU
  under the GIL, so threads cost nothing versus processes while still
  overlapping anything that genuinely waits on the wall clock (pacing
  floors, operator I/O).
* ``stop_when`` implements fail-fast: once any completed job's result
  satisfies it, no further jobs are dispatched.  Jobs already running
  finish normally; undispatched jobs are simply absent from the result
  map.

``execute`` must never raise — wrap failures into the result type, as
:class:`~repro.campaign.runner.RecipeExecutor` does — because a raised
exception would kill one worker thread and silently shrink the fleet.
"""

from __future__ import annotations

import collections
import threading
import typing as _t

from repro.errors import CampaignError

__all__ = ["run_fleet"]

R = _t.TypeVar("R")
J = _t.TypeVar("J")


def run_fleet(
    jobs: _t.Sequence[J],
    execute: _t.Callable[[int, J], R],
    *,
    workers: int = 1,
    stop_when: _t.Optional[_t.Callable[[R], bool]] = None,
) -> dict[int, R]:
    """Drain ``jobs`` through a fleet of ``workers`` threads.

    ``execute(worker_id, job)`` runs each job; results come back keyed
    by the job's position in ``jobs``.  Positions missing from the map
    were never dispatched (fail-fast stopped the fleet first).
    """
    if workers < 1:
        raise CampaignError(f"workers must be >= 1, got {workers}")
    queue: collections.deque = collections.deque(enumerate(jobs))
    lock = threading.Lock()
    stop = threading.Event()
    results: dict[int, R] = {}

    def worker(worker_id: int) -> None:
        while True:
            with lock:
                if stop.is_set() or not queue:
                    return
                key, job = queue.popleft()
            result = execute(worker_id, job)
            with lock:
                results[key] = result
            if stop_when is not None and stop_when(result):
                stop.set()

    fleet_size = max(1, min(workers, len(jobs)))
    if fleet_size == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"fleet-worker-{i}", daemon=True
            )
            for i in range(fleet_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return results
