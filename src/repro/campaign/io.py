"""JSON-lines export/import for campaign results.

Follows the conventions of :mod:`repro.logstore.export`: one JSON
document per line, dump/load round-trips exactly, and malformed input
fails loudly with the offending line number — a corrupt campaign dump
must not silently produce a wrong diff.

Line 1 is a ``{"record": "campaign", ...}`` header carrying the
aggregate fields; every following line is a ``{"record": "outcome",
...}`` document.  The format is append-friendly and greppable, like
the observation-log dumps.
"""

from __future__ import annotations

import json
import typing as _t

from repro.campaign.results import CampaignResult, RecipeOutcome
from repro.errors import CampaignError

__all__ = ["dumps", "loads", "dump_jsonl", "load_jsonl"]

#: Format version written into the header line.
FORMAT_VERSION = 1


def dumps(result: CampaignResult) -> str:
    """Serialize a campaign result to JSON-lines text."""
    header = {
        "record": "campaign",
        "version": FORMAT_VERSION,
        "name": result.name,
        "app": result.app,
        "seed": result.seed,
        "workers": result.workers,
        "wall_time": result.wall_time,
        "rerun_failures": result.rerun_failures,
    }
    lines = [json.dumps(header)]
    for outcome in result.outcomes:
        doc = outcome.to_dict()
        doc["record"] = "outcome"
        lines.append(json.dumps(doc))
    return "\n".join(lines)


def loads(text: str) -> CampaignResult:
    """Rebuild a campaign result from JSON-lines text.

    Raises :class:`CampaignError` naming the offending line on any
    malformed input.
    """
    header: _t.Optional[dict] = None
    outcomes: list[RecipeOutcome] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"malformed campaign dump at line {line_number}: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise CampaignError(
                f"malformed campaign dump at line {line_number}:"
                f" expected an object, got {type(doc).__name__}"
            )
        kind = doc.pop("record", None)
        if header is None:
            if kind != "campaign":
                raise CampaignError(
                    f"malformed campaign dump at line {line_number}:"
                    " first record must be the campaign header"
                )
            doc.pop("version", None)
            header = doc
        elif kind == "outcome":
            try:
                outcomes.append(RecipeOutcome.from_dict(doc))
            except (TypeError, ValueError, KeyError) as exc:
                raise CampaignError(
                    f"malformed campaign dump at line {line_number}: {exc}"
                ) from exc
        else:
            raise CampaignError(
                f"malformed campaign dump at line {line_number}:"
                f" unknown record kind {kind!r}"
            )
    if header is None:
        raise CampaignError("empty campaign dump: no header record")
    try:
        return CampaignResult(outcomes=outcomes, **header)
    except TypeError as exc:
        raise CampaignError(f"malformed campaign header: {exc}") from exc


def dump_jsonl(result: CampaignResult, path: _t.Union[str, "_t.Any"]) -> int:
    """Write the result to ``path``; returns the number of outcomes."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(result))
        handle.write("\n")
    return len(result.outcomes)


def load_jsonl(path: _t.Union[str, "_t.Any"]) -> CampaignResult:
    """Read a campaign result back from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
