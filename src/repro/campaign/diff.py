"""Campaign-to-campaign diffing: regression detection between revisions.

Run the same plan on two code revisions (or two configurations), dump
both results, and diff them: recipes that flipped pass -> fail are
regressions, fail -> pass are fixes, and the pooled end-to-end latency
samples are compared with the Kolmogorov-Smirnov machinery from
:mod:`repro.analysis.compare` — a recipe suite can keep passing while
the latency distribution quietly walks right, and the KS test is what
catches that.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.compare import CdfComparison, compare_cdfs
from repro.campaign.results import CONCLUSIVE_FAILURES, CampaignResult

__all__ = ["StatusChange", "CampaignDiff", "diff_campaigns"]


@dataclasses.dataclass(frozen=True)
class StatusChange:
    """One recipe whose status differs between the two campaigns."""

    name: str
    baseline: str
    candidate: str

    def __str__(self) -> str:
        return f"{self.name}: {self.baseline} -> {self.candidate}"


@dataclasses.dataclass
class CampaignDiff:
    """Everything that changed between a baseline and a candidate run."""

    baseline: str
    candidate: str
    #: pass (baseline) -> conclusive failure (candidate).
    regressions: list[StatusChange]
    #: conclusive failure (baseline) -> pass (candidate).
    fixes: list[StatusChange]
    #: Status changed some other way (e.g. inconclusive -> pass).
    other_changes: list[StatusChange]
    #: Recipe names only present in the candidate / only in the baseline.
    added: list[str]
    removed: list[str]
    #: Recipes newly classified flaky in the candidate.
    newly_flaky: list[str]
    #: KS comparison of pooled load latencies (None when either side
    #: recorded no samples).
    latency: _t.Optional[CdfComparison]

    @property
    def has_regressions(self) -> bool:
        """True when the candidate broke something the baseline passed."""
        return bool(self.regressions)

    @property
    def clean(self) -> bool:
        """True when nothing at all changed between the runs."""
        return not (
            self.regressions
            or self.fixes
            or self.other_changes
            or self.added
            or self.removed
            or self.newly_flaky
        )

    def text(self) -> str:
        """Human-readable multi-line diff report."""
        lines = [f"campaign diff: {self.baseline!r} -> {self.candidate!r}"]
        for label, changes in (
            ("regressions", self.regressions),
            ("fixes", self.fixes),
            ("other status changes", self.other_changes),
        ):
            lines.append(f"  {label}: {len(changes)}")
            for change in changes:
                lines.append(f"    {change}")
        if self.newly_flaky:
            lines.append(f"  newly flaky: {', '.join(self.newly_flaky)}")
        if self.added:
            lines.append(f"  recipes added: {', '.join(self.added)}")
        if self.removed:
            lines.append(f"  recipes removed: {', '.join(self.removed)}")
        if self.latency is not None:
            same = self.latency.same_distribution()
            lines.append(
                f"  latency: {self.latency}"
                f" ({'indistinguishable' if same else 'distribution shifted'})"
            )
        if self.clean:
            lines.append("  no differences")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "regressions": [dataclasses.asdict(c) for c in self.regressions],
            "fixes": [dataclasses.asdict(c) for c in self.fixes],
            "other_changes": [dataclasses.asdict(c) for c in self.other_changes],
            "added": self.added,
            "removed": self.removed,
            "newly_flaky": self.newly_flaky,
            "latency": (
                None
                if self.latency is None
                else dataclasses.asdict(self.latency)
            ),
            "has_regressions": self.has_regressions,
        }


def diff_campaigns(
    baseline: CampaignResult, candidate: CampaignResult
) -> CampaignDiff:
    """Compare two campaign results recipe by recipe."""
    base_by_name = {outcome.name: outcome for outcome in baseline.outcomes}
    cand_by_name = {outcome.name: outcome for outcome in candidate.outcomes}

    regressions: list[StatusChange] = []
    fixes: list[StatusChange] = []
    other_changes: list[StatusChange] = []
    newly_flaky: list[str] = []
    for name in sorted(set(base_by_name) & set(cand_by_name)):
        old, new = base_by_name[name], cand_by_name[name]
        if old.status != new.status:
            change = StatusChange(name, old.status, new.status)
            if old.status == "pass" and new.status in CONCLUSIVE_FAILURES:
                regressions.append(change)
            elif old.status in CONCLUSIVE_FAILURES and new.status == "pass":
                fixes.append(change)
            else:
                other_changes.append(change)
        if new.classification == "flaky" and old.classification != "flaky":
            newly_flaky.append(name)

    base_latencies = [
        sample for outcome in baseline.outcomes for sample in outcome.latencies
    ]
    cand_latencies = [
        sample for outcome in candidate.outcomes for sample in outcome.latencies
    ]
    latency = (
        compare_cdfs(base_latencies, cand_latencies)
        if base_latencies and cand_latencies
        else None
    )

    return CampaignDiff(
        baseline=baseline.name,
        candidate=candidate.name,
        regressions=regressions,
        fixes=fixes,
        other_changes=other_changes,
        added=sorted(set(cand_by_name) - set(base_by_name)),
        removed=sorted(set(base_by_name) - set(cand_by_name)),
        newly_flaky=newly_flaky,
        latency=latency,
    )
