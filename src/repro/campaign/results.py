"""Campaign result model: per-recipe outcomes and their aggregate.

Everything here is plain serializable data — the runner produces it,
the scorecard/diff/io layers consume it.  Keeping live objects
(deployments, recipes, stores) out of the result model is what lets a
campaign be dumped to JSON-lines, reloaded in another process or on
another revision, and diffed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.patterns import CheckResult

__all__ = [
    "CheckOutcome",
    "RecipeOutcome",
    "CampaignResult",
    "STATUS_ORDER",
    "CONCLUSIVE_FAILURES",
]

#: Every status a recipe execution can end in, in report order.
STATUS_ORDER = ("pass", "fail", "inconclusive", "timeout", "error", "skipped")

#: Statuses that count as the campaign finding (or hitting) a problem.
CONCLUSIVE_FAILURES = frozenset({"fail", "timeout", "error"})


@dataclasses.dataclass
class CheckOutcome:
    """One pattern check's verdict, detached from live check objects."""

    name: str
    passed: bool
    inconclusive: bool
    detail: str

    @classmethod
    def from_result(cls, result: CheckResult) -> "CheckOutcome":
        return cls(
            name=result.name,
            passed=result.passed,
            inconclusive=result.inconclusive,
            detail=result.detail,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "CheckOutcome":
        return cls(**doc)


@dataclasses.dataclass
class RecipeOutcome:
    """Everything one planned recipe's execution produced.

    ``status`` is one of :data:`STATUS_ORDER`:

    * ``pass`` — every check passed;
    * ``fail`` — at least one check failed conclusively;
    * ``inconclusive`` — nothing failed conclusively but some check
      lacked evidence (fault not exercised);
    * ``timeout`` — the recipe exceeded its wall-clock budget;
    * ``error`` — the execution raised;
    * ``skipped`` — fail-fast stopped the campaign before this entry ran.

    ``attempts`` records the status of the initial run plus every
    flake-detection rerun; ``classification`` summarizes them as
    ``"broken"`` (failed every reseeded rerun) or ``"flaky"`` (passed
    at least one).

    ``metrics`` is the recipe deployment's metrics snapshot (plain
    data, see :mod:`repro.observability.metrics`); snapshots from all
    outcomes merge into the campaign-wide view.  ``attributions`` are
    serialized :class:`~repro.observability.attribution.FaultAttribution`
    dicts produced for failing recipes: which injected fault caused
    each failed request and how it propagated.
    """

    index: int
    name: str
    pattern: str
    service: str
    seed: int
    status: str
    checks: list[CheckOutcome] = dataclasses.field(default_factory=list)
    orchestration_time: float = 0.0
    assertion_time: float = 0.0
    wall_time: float = 0.0
    window: tuple[float, float] = (0.0, 0.0)
    latencies: list[float] = dataclasses.field(default_factory=list)
    error: _t.Optional[str] = None
    attempts: list[str] = dataclasses.field(default_factory=list)
    classification: _t.Optional[str] = None
    worker: int = 0
    metrics: dict = dataclasses.field(default_factory=dict)
    attributions: list[dict] = dataclasses.field(default_factory=list)

    @property
    def conclusive_failure(self) -> bool:
        """True when this outcome should fail the campaign."""
        return self.status in CONCLUSIVE_FAILURES

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["window"] = list(self.window)
        doc["checks"] = [check.to_dict() for check in self.checks]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "RecipeOutcome":
        doc = dict(doc)
        doc["window"] = tuple(doc.get("window", (0.0, 0.0)))
        doc["checks"] = [CheckOutcome.from_dict(c) for c in doc.get("checks", [])]
        return cls(**doc)


@dataclasses.dataclass
class CampaignResult:
    """Aggregate of one campaign execution."""

    name: str
    app: str
    seed: int
    workers: int
    outcomes: list[RecipeOutcome]
    wall_time: float = 0.0
    #: Reruns attempted per failed recipe during flake detection.
    rerun_failures: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def counts(self) -> dict[str, int]:
        """Status -> number of recipes, every status always present."""
        counts = {status: 0 for status in STATUS_ORDER}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def passed(self) -> bool:
        """True when no recipe failed conclusively."""
        return not any(outcome.conclusive_failure for outcome in self.outcomes)

    @property
    def failures(self) -> list[RecipeOutcome]:
        """Outcomes that failed conclusively, in plan order."""
        return [outcome for outcome in self.outcomes if outcome.conclusive_failure]

    @property
    def flaky(self) -> list[RecipeOutcome]:
        """Failures that passed at least one reseeded rerun."""
        return [o for o in self.outcomes if o.classification == "flaky"]

    @property
    def broken(self) -> list[RecipeOutcome]:
        """Failures that failed every reseeded rerun."""
        return [o for o in self.outcomes if o.classification == "broken"]

    def outcome(self, name: str) -> RecipeOutcome:
        """Look up one outcome by recipe name."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no outcome named {name!r}")

    def scorecard(self):
        """Per-service / per-pattern aggregation (lazy import avoids a
        module cycle: the scorecard renders this result model)."""
        from repro.campaign.scorecard import Scorecard

        return Scorecard.from_outcomes(self.outcomes)

    def resilience_report(self):
        """Full cascade analysis of this campaign (lazy import, same
        reasoning as :meth:`scorecard`): dependency graph, blast radii,
        ranked root causes, and the JSON/HTML report artifact."""
        from repro.observability.cascade.report import build_report

        return build_report(self)

    def merged_metrics(self) -> dict:
        """Campaign-wide metrics: every recipe's snapshot folded.

        Each recipe ran on its own deployment with its own registry;
        because snapshots merge associatively, the campaign total is
        independent of worker count and execution order — the same
        determinism contract the outcomes themselves carry.
        """
        from repro.observability.metrics import merge_snapshots

        return merge_snapshots(*(o.metrics for o in self.outcomes if o.metrics))

    def summary(self) -> str:
        """One-line totals for CLI output."""
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in STATUS_ORDER if counts[s]]
        flaky, broken = len(self.flaky), len(self.broken)
        if flaky:
            parts.append(f"{flaky} flaky")
        if broken:
            parts.append(f"{broken} broken")
        return (
            f"{self.name}: {len(self.outcomes)} recipes — "
            + ", ".join(parts)
            + f" ({self.wall_time:.2f}s wall, {self.workers} workers)"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "app": self.app,
            "seed": self.seed,
            "workers": self.workers,
            "wall_time": self.wall_time,
            "rerun_failures": self.rerun_failures,
            "counts": self.counts(),
            "passed": self.passed,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignResult":
        return cls(
            name=doc["name"],
            app=doc["app"],
            seed=doc["seed"],
            workers=doc["workers"],
            wall_time=doc.get("wall_time", 0.0),
            rerun_failures=doc.get("rerun_failures", 0),
            outcomes=[RecipeOutcome.from_dict(o) for o in doc.get("outcomes", [])],
        )
