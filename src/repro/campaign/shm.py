"""Per-worker shared-memory slabs for the fleet's result transport.

With ``--result-transport shm`` each worker process owns one
grow-on-demand :class:`multiprocessing.shared_memory.SharedMemory`
slab.  Results are encoded (:mod:`repro.campaign.codec`) into the slab
and only a tiny ``(name, generation, offset, length, crc)`` header
crosses the pipe; the parent resolves the header against its own
mapping of the same segment and decodes straight from a
``memoryview`` — the 20 KB-class outcome payload itself is written
once and never copied through the pipe.

Reuse is made safe by *generations*: the worker bumps a monotonically
increasing generation every time it rewinds the slab (once per
dispatched batch — the parent has, by the pool's dispatch contract,
consumed every prior result by then) and every time it rotates to a
bigger segment.  Each record carries the generation both in the pipe
header and in a ``<QII`` record header inside the slab, plus a CRC-32
of the payload; the parent cross-checks all three, so a stale or torn
read can never decode silently.

The transport knob mirrors the calendar-vs-heap scheduler pattern:
``pickle`` (the bit-for-bit reference lane, and the default) vs
``shm``, selectable per call, via ``REPRO_RESULT_TRANSPORT``, with an
automatic fall back to ``pickle`` wherever POSIX shared memory is
unavailable.
"""

from __future__ import annotations

import os
import struct
import typing as _t
import zlib

from repro.errors import CampaignError

__all__ = [
    "DEFAULT_SLAB_BYTES",
    "RESULT_TRANSPORTS",
    "SLAB_RECORD_HEADER",
    "SlabError",
    "SlabReader",
    "SlabRef",
    "SlabWriter",
    "resolve_result_transport",
    "shared_memory_available",
]

#: The result transports every fleet-driven harness accepts.
RESULT_TRANSPORTS = ("pickle", "shm")

#: Environment knob consulted when no explicit transport is passed
#: (same contract as ``REPRO_SCHEDULER`` for the kernel's queues).
TRANSPORT_ENV = "REPRO_RESULT_TRANSPORT"

#: Initial slab size; slabs double (at least) whenever a batch outgrows
#: them, so steady state is one segment per worker, write-only.
DEFAULT_SLAB_BYTES = 1 << 20

#: Per-record header inside the slab: generation u64, payload length
#: u32, payload crc32 u32.  Cross-checked against the pipe header.
SLAB_RECORD_HEADER = struct.Struct("<QII")


class SlabError(Exception):
    """A slab record could not be resolved (stale, torn, or gone)."""


class SlabRef(_t.NamedTuple):
    """What crosses the pipe instead of the result payload."""

    name: str
    generation: int
    offset: int
    length: int
    crc: int


def shared_memory_available() -> bool:
    """Whether this platform can create POSIX shared-memory segments."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform without _posixshmem
        return False
    return True


def resolve_result_transport(transport: _t.Optional[str] = None) -> str:
    """Resolve the transport knob: explicit arg, then env, then pickle.

    ``shm`` silently degrades to ``pickle`` where shared memory is
    unavailable, so campaign scripts stay portable; an unknown name is
    a :class:`CampaignError` either way.
    """
    if transport is None:
        transport = os.environ.get(TRANSPORT_ENV) or "pickle"
    if transport not in RESULT_TRANSPORTS:
        raise CampaignError(
            f"unknown result transport {transport!r};"
            f" expected one of {RESULT_TRANSPORTS}"
        )
    if transport == "shm" and not shared_memory_available():
        return "pickle"
    return transport


class SlabWriter:
    """Worker-side slab: append result records, rewind once per batch."""

    def __init__(self, initial_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        from multiprocessing import shared_memory

        self._shared_memory = shared_memory
        self._segment = shared_memory.SharedMemory(create=True, size=initial_bytes)
        self._offset = 0
        self._generation = 0
        #: Segments outgrown mid-batch.  They may still hold records the
        #: parent has not read, so unlinking waits for the next batch
        #: boundary (by which point the pool has consumed everything).
        self._retired: list = []

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def generation(self) -> int:
        return self._generation

    def new_batch(self) -> None:
        """Start a batch: rewind the slab and retire outgrown segments."""
        self._offset = 0
        self._generation += 1
        while self._retired:
            segment = self._retired.pop()
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def _rotate(self, needed: int) -> None:
        size = max(self._segment.size * 2, needed, DEFAULT_SLAB_BYTES)
        replacement = self._shared_memory.SharedMemory(create=True, size=size)
        self._retired.append(self._segment)
        self._segment = replacement
        self._offset = 0
        self._generation += 1

    def write(self, payload: bytes) -> SlabRef:
        """Append one record; returns the header to send over the pipe."""
        record_len = SLAB_RECORD_HEADER.size + len(payload)
        if self._offset + record_len > self._segment.size:
            self._rotate(record_len)
        offset = self._offset
        crc = zlib.crc32(payload)
        SLAB_RECORD_HEADER.pack_into(
            self._segment.buf, offset, self._generation, len(payload), crc
        )
        self._segment.buf[
            offset + SLAB_RECORD_HEADER.size : offset + record_len
        ] = payload
        self._offset = offset + record_len
        return SlabRef(
            self._segment.name, self._generation, offset, len(payload), crc
        )

    def close(self) -> None:
        """Unlink every segment this writer ever created.  Idempotent."""
        segments = [*self._retired, self._segment]
        self._retired = []
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass


class SlabReader:
    """Parent-side view: resolve :class:`SlabRef` headers to payloads.

    Attachments are cached per segment name; resolution cross-checks
    the pipe header against the record header *in* the slab (same
    generation, length, CRC) before handing out a zero-copy
    ``memoryview`` of the payload.
    """

    def __init__(self) -> None:
        self._segments: dict[str, _t.Any] = {}

    def _attach(self, name: str):
        segment = self._segments.get(name)
        if segment is None:
            from multiprocessing import shared_memory

            try:
                # Attaching re-registers the name with the resource
                # tracker; spawn workers share the parent's tracker, so
                # the set-add is idempotent and the worker's eventual
                # unlink clears it — no extra bookkeeping needed here.
                segment = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError) as exc:
                raise SlabError(f"slab {name} is gone: {exc}") from exc
            self._segments[name] = segment
        return segment

    def read(self, ref: SlabRef) -> memoryview:
        """Zero-copy payload for ``ref``; raises :class:`SlabError`."""
        segment = self._attach(ref.name)
        header_end = ref.offset + SLAB_RECORD_HEADER.size
        end = header_end + ref.length
        if ref.offset < 0 or end > segment.size:
            raise SlabError(
                f"record [{ref.offset}:{end}] outside slab {ref.name}"
                f" of {segment.size} bytes"
            )
        generation, length, crc = SLAB_RECORD_HEADER.unpack_from(
            segment.buf, ref.offset
        )
        if generation != ref.generation or length != ref.length:
            raise SlabError(
                f"stale slab record: header says gen {ref.generation}"
                f" len {ref.length}, slab holds gen {generation} len {length}"
            )
        payload = segment.buf[header_end:end]
        actual_crc = zlib.crc32(payload)
        if crc != ref.crc or actual_crc != ref.crc:
            raise SlabError(
                f"slab record crc mismatch (want {ref.crc:#x},"
                f" header {crc:#x}, payload {actual_crc:#x})"
            )
        return payload

    def forget(self, name: str) -> None:
        """Drop (and close) the cached attachment for ``name``."""
        segment = self._segments.pop(name, None)
        if segment is not None:
            try:
                segment.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def unlink(self, name: str) -> None:
        """Best-effort unlink for a dead worker's segment."""
        try:
            segment = self._attach(name)
        except SlabError:
            return
        self._segments.pop(name, None)
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    def close(self) -> None:
        for name in list(self._segments):
            self.forget(name)
