"""Parallel fleet execution of a campaign plan.

Execution model
---------------
Every planned recipe runs on its **own freshly-built deployment**,
materialized inside the worker from the campaign's deployment factory
and seeded with the entry's :func:`~repro.campaign.plan.derive_seed`
value.  Nothing is shared between recipes — no simulator, no event
store, no agent state — so an outcome depends only on
``(factory, recipe, seed)`` and never on which worker executed it,
how many workers ran, or in what order the queue drained.  That is the
determinism contract the campaign tests pin.

Workers come from the shared fleet (:mod:`repro.campaign.fleet`) and
run on one of two backends.  ``threads`` (the default) pays no
serialization cost and overlaps everything that waits on the wall
clock — the per-recipe ``pacing`` floor (modeling campaigns against
live deployments, where an experiment occupies a test slot for real
time — fault windows, log settling) and, in real-world embeddings,
operator-supplied I/O — but the simulated control/data plane is pure
CPU, so under the GIL threads cannot speed up compute-bound suites.
``processes`` runs each recipe in an isolated spawn-started
interpreter: the planned entry (+ seed) is pickled to the worker and
the outcome ships back as its compact dict form, which is what lets a
CPU-bound campaign scale across cores and lets a crashed worker be
replaced without losing more than the one job it held.  Outcomes are
bit-for-bit identical across backends and worker counts — the
determinism contract the campaign tests pin.

Guard rails: a per-recipe wall-clock ``timeout`` is enforced
cooperatively by slicing the virtual-time run loop (the kernel's
``peek``/``run(until=...)``), ``fail_fast`` stops dispatching after the
first conclusive failure, and failed recipes are re-run with perturbed
seeds to separate *broken* behaviour (fails under every seed) from
*flaky* behaviour (seed-sensitive).
"""

from __future__ import annotations

import copy
import dataclasses
import pickle
import threading
import time
import typing as _t

from repro.agent.rules import fresh_rule_ids
from repro.campaign.fleet import (
    BACKENDS,
    ProcessPool,
    ProcessWorkerSpec,
    resolve_workers,
    run_fleet,
)
from repro.campaign.plan import CampaignPlan, DeploymentFactory, PlannedRecipe, derive_seed
from repro.campaign.shm import resolve_result_transport
from repro.campaign.results import (
    CONCLUSIVE_FAILURES,
    CampaignResult,
    CheckOutcome,
    RecipeOutcome,
)
from repro.core.gremlin import Gremlin
from repro.core.queries import QueryCache
from repro.errors import CampaignError, CampaignTimeoutError
from repro.loadgen import ClosedLoopLoad
from repro.observability.attribution import attribute_run

__all__ = ["RecipeExecutor", "CampaignRunner"]

#: Cap on serialized fault attributions per failing recipe, so one
#: pathological recipe cannot bloat the campaign dump.
MAX_ATTRIBUTIONS = 25


def _classify(checks: _t.Sequence[CheckOutcome]) -> str:
    """Fold a recipe's check outcomes into one status."""
    if not checks:
        return "inconclusive"
    if all(check.passed for check in checks):
        return "pass"
    if any(not check.passed and not check.inconclusive for check in checks):
        return "fail"
    return "inconclusive"


class RecipeExecutor:
    """Executes one planned recipe on a fresh, isolated deployment.

    Mirrors :meth:`Gremlin.run_recipe` (inject -> load -> settle ->
    drain -> check -> clear) but drives the simulator in bounded
    virtual-time slices so a wall-clock deadline can interrupt a
    runaway recipe between slices, and optionally pads each recipe to a
    ``pacing`` wall-clock floor.
    """

    def __init__(
        self,
        factory: DeploymentFactory,
        *,
        timeout: _t.Optional[float] = 60.0,
        pacing: float = 0.0,
        slice_virtual: float = 60.0,
        stop_event: _t.Optional[threading.Event] = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise CampaignError(f"timeout must be > 0 or None, got {timeout}")
        if pacing < 0:
            raise CampaignError(f"pacing must be >= 0, got {pacing}")
        if slice_virtual <= 0:
            raise CampaignError(f"slice_virtual must be > 0, got {slice_virtual}")
        self.factory = factory
        self.timeout = timeout
        self.pacing = pacing
        self.slice_virtual = slice_virtual
        #: Fleet-wide fail-fast signal: while padding a recipe to its
        #: pacing floor the executor waits on this event instead of
        #: sleeping blind, so a conclusive failure elsewhere releases
        #: the worker immediately rather than after the pacing interval.
        self.stop_event = stop_event

    def execute(
        self, planned: PlannedRecipe, seed: _t.Optional[int] = None
    ) -> RecipeOutcome:
        """Run one planned recipe; never raises — failures become
        ``error``/``timeout`` outcomes so one bad recipe cannot take
        down the fleet."""
        started = time.monotonic()
        deadline = started + self.timeout if self.timeout is not None else None
        seed = planned.seed if seed is None else seed
        outcome = RecipeOutcome(
            index=planned.index,
            name=planned.name,
            pattern=planned.pattern,
            service=planned.service,
            seed=seed,
            status="error",
        )
        gremlin = None
        try:
            recipe = planned.recipe
            spec = planned.load
            deployment = self.factory().deploy(seed=seed)
            source = deployment.add_traffic_source(spec.entry, name=spec.source_name)
            gremlin = Gremlin(deployment)
            sim = deployment.sim

            window_start = sim.now
            orch_start = time.perf_counter()
            # Scoped rule numbering: ids (and the Rule#N strings baked
            # into attributions) restart at 1 for every recipe, so the
            # outcome is bit-for-bit identical across fleet backends,
            # worker counts, and whatever ran earlier in the process.
            with fresh_rule_ids():
                installation = gremlin.inject(*recipe.scenarios)
            outcome.orchestration_time = time.perf_counter() - orch_start

            load = ClosedLoopLoad(
                num_requests=spec.requests, think_time=spec.think_time, uri=spec.uri
            )
            sim.process(load.driver(source), name=f"load/{recipe.name}")
            if recipe.load is not None:
                sim.process(recipe.load(deployment), name=f"extra-load/{recipe.name}")
            self._run_drained(sim, deadline)
            settle = max(planned.settle, recipe.settle)
            if settle > 0:
                sim.run(until=sim.now + settle)
            drained = deployment.pipeline.drained()
            if not drained.triggered:
                self._run_drained(sim, deadline)
            window_end = sim.now
            outcome.window = (window_start, window_end)
            outcome.latencies = load.result.latencies

            assert_start = time.perf_counter()
            cache = QueryCache(deployment.store)
            for check in recipe.checks:
                for scope in check.scopes(since=window_start, until=window_end):
                    cache.search(scope)
            outcome.checks = [
                CheckOutcome.from_result(
                    check.run(cache, since=window_start, until=window_end)
                )
                for check in recipe.checks
            ]
            outcome.assertion_time = time.perf_counter() - assert_start
            outcome.status = _classify(outcome.checks)
            outcome.metrics = deployment.metrics_snapshot()
            if outcome.status == "fail":
                # Explain the failure: join the traces of faulted
                # requests against the rules this recipe installed.
                outcome.attributions = [
                    attribution.to_dict()
                    for attribution in attribute_run(
                        deployment.store,
                        installation.rules,
                        limit=MAX_ATTRIBUTIONS,
                    )
                ]
        except CampaignTimeoutError:
            outcome.status = "timeout"
            outcome.error = (
                f"recipe exceeded its {self.timeout:g}s wall-clock budget"
            )
        except Exception as exc:  # noqa: BLE001 - isolate fleet from one bad recipe
            outcome.status = "error"
            outcome.error = f"{type(exc).__name__}: {exc}"
        finally:
            if gremlin is not None:
                try:
                    gremlin.clear()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
        outcome.wall_time = time.monotonic() - started
        if self.pacing > 0:
            remaining = self.pacing - outcome.wall_time
            if remaining > 0 and not (
                self.stop_event is not None and self.stop_event.is_set()
            ):
                if self.stop_event is not None:
                    # Wakes early the moment fail-fast trips fleet-wide.
                    self.stop_event.wait(remaining)
                else:
                    time.sleep(remaining)
            outcome.wall_time = time.monotonic() - started
        return outcome

    def _run_drained(self, sim, deadline: _t.Optional[float]) -> None:
        """Run the simulator until its event queue drains, in
        ``slice_virtual``-sized steps, checking the wall clock between
        slices."""
        while sim.peek() != float("inf"):
            if deadline is not None and time.monotonic() > deadline:
                raise CampaignTimeoutError()
            sim.run(until=sim.now + self.slice_virtual)


def _process_execute(
    worker_id: int,
    job: tuple[PlannedRecipe, _t.Optional[int]],
    context: dict,
) -> dict:
    """Process-backend entry point: runs inside a worker interpreter.

    Rebuilds an executor from the pickled context, runs one planned
    recipe, and ships the outcome back in its compact serialized form
    (checks, metrics snapshot, fault attributions — everything
    :meth:`RecipeOutcome.to_dict` carries) for the parent to merge.
    """
    executor = RecipeExecutor(
        context["factory"],
        timeout=context["timeout"],
        pacing=context["pacing"],
        slice_virtual=context["slice_virtual"],
    )
    entry, seed = job
    outcome = executor.execute(entry, seed=seed)
    outcome.worker = worker_id
    return outcome.to_dict()


def _crashed_outcome(
    job: tuple[PlannedRecipe, _t.Optional[int]], detail: str
) -> dict:
    """Parent-side conversion of a dead worker's job into a failed
    outcome, so a crash is a reported result — never a hang and never a
    silently missing plan entry."""
    entry, seed = job
    return RecipeOutcome(
        index=entry.index,
        name=entry.name,
        pattern=entry.pattern,
        service=entry.service,
        seed=entry.seed if seed is None else seed,
        status="error",
        error=f"worker process died: {detail}",
    ).to_dict()


class CampaignRunner:
    """Executes a :class:`CampaignPlan` across N parallel workers.

    Parameters
    ----------
    factory:
        Deployment factory; each worker builds one fresh deployment per
        recipe from it.  The ``processes`` backend pickles it to the
        workers, so it must be an importable module-level callable.
    workers:
        Fleet size, or ``"auto"`` for one worker per CPU core.  ``1``
        executes serially.
    backend:
        ``"threads"`` (default; zero serialization, overlaps paced /
        I/O-bound recipes) or ``"processes"`` (spawn-isolated
        interpreters that parallelize CPU-bound suites and contain
        worker crashes).  Outcomes are identical either way.
    timeout:
        Per-recipe wall-clock budget in seconds (None disables).
    pacing:
        Minimum wall-clock seconds each recipe occupies its worker —
        models campaigns against live deployments where an experiment
        holds a test slot for real time.  0 runs at full simulation
        speed.
    fail_fast:
        Stop dispatching new recipes after the first conclusive
        failure; undispatched entries are reported as ``skipped``.
    rerun_failures:
        Flake detection: re-run each ``fail`` outcome this many times
        with perturbed seeds, classifying it ``flaky`` (passed at least
        once) or ``broken`` (failed every attempt).
    batch_size:
        Process backend only: how many recipes ship per worker
        dispatch.  Batching amortizes the pickle/pipe round-trip when
        recipes are cheap; results still stream back per recipe, so
        crash attribution and fail-fast keep per-recipe precision.
    result_transport:
        Process backend only: ``"pickle"`` (reference lane) ships each
        outcome dict back over the worker pipe; ``"shm"`` encodes it
        into a per-worker shared-memory slab and pipes only a tiny
        header (see :mod:`repro.campaign.shm`).  ``None`` consults
        ``REPRO_RESULT_TRANSPORT``, then defaults to pickle.  Outcomes
        are byte-identical either way.
    """

    def __init__(
        self,
        factory: DeploymentFactory,
        *,
        workers: _t.Union[int, str] = 1,
        backend: str = "threads",
        timeout: _t.Optional[float] = 60.0,
        pacing: float = 0.0,
        fail_fast: bool = False,
        rerun_failures: int = 0,
        slice_virtual: float = 60.0,
        batch_size: int = 1,
        result_transport: _t.Optional[str] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise CampaignError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if rerun_failures < 0:
            raise CampaignError(f"rerun_failures must be >= 0, got {rerun_failures}")
        if batch_size < 1:
            raise CampaignError(f"batch_size must be >= 1, got {batch_size}")
        self.factory = factory
        self.workers = resolve_workers(workers)
        self.backend = backend
        self.timeout = timeout
        self.pacing = pacing
        self.fail_fast = fail_fast
        self.rerun_failures = rerun_failures
        self.slice_virtual = slice_virtual
        self.batch_size = batch_size
        self.result_transport = resolve_result_transport(result_transport)
        #: Warm worker pool (processes backend): built lazily on the
        #: first fleet wave of a run and reused by the flake-rerun
        #: wave, so reruns skip the interpreter-spawn tax.  Closed at
        #: the end of every :meth:`run`.
        self._pool: _t.Optional[ProcessPool] = None

    def _executor(
        self, stop_event: _t.Optional[threading.Event] = None
    ) -> RecipeExecutor:
        return RecipeExecutor(
            self.factory,
            timeout=self.timeout,
            pacing=self.pacing,
            slice_virtual=self.slice_virtual,
            stop_event=stop_event,
        )

    def run(self, plan: CampaignPlan) -> CampaignResult:
        """Execute the whole plan; returns outcomes in plan order."""
        started = time.perf_counter()
        try:
            executed = self._run_fleet(
                [(entry, None) for entry in plan.entries], fail_fast=self.fail_fast
            )

            outcomes: list[RecipeOutcome] = []
            for position, entry in enumerate(plan.entries):
                outcome = executed.get(position)
                if outcome is None:
                    outcome = RecipeOutcome(
                        index=entry.index,
                        name=entry.name,
                        pattern=entry.pattern,
                        service=entry.service,
                        seed=entry.seed,
                        status="skipped",
                    )
                outcome.attempts = [outcome.status]
                outcomes.append(outcome)

            if self.rerun_failures > 0:
                # The flake wave reuses the main wave's warm workers.
                self._detect_flakes(plan, outcomes)
        finally:
            self._close_pool()

        return CampaignResult(
            name=plan.name,
            app=plan.app,
            seed=plan.seed,
            workers=self.workers,
            outcomes=outcomes,
            wall_time=time.perf_counter() - started,
            rerun_failures=self.rerun_failures,
        )

    def run_sharded(self, plan: CampaignPlan, shards: int) -> CampaignResult:
        """Execute the plan as ``shards`` independent partitions run
        concurrently, merging outcomes back into plan order.

        Entries are dealt round-robin so every shard sees the same
        priority mix, and each shard runs as its own sub-campaign —
        own fleet (``workers // shards`` each, minimum one), own warm
        pool, own flake reruns.  Outcomes are merged by plan index into
        a single :class:`CampaignResult`, so scorecards and reports
        aggregate across shards exactly as for an unsharded run.
        Determinism holds: per-recipe seeds derive from the campaign
        seed and recipe name alone, so sharding changes which fleet ran
        a recipe, never its outcome.  ``fail_fast`` applies within each
        shard independently (a failure stops that shard's dispatching;
        sibling shards run to completion).
        """
        if shards < 1:
            raise CampaignError(f"shards must be >= 1, got {shards}")
        shards = min(shards, len(plan.entries)) if plan.entries else 1
        if shards <= 1:
            return self.run(plan)
        started = time.perf_counter()
        partitions = [plan.entries[offset::shards] for offset in range(shards)]
        shard_workers = max(1, self.workers // shards)
        results: list[_t.Optional[CampaignResult]] = [None] * shards
        errors: list[BaseException] = []

        def run_shard(position: int) -> None:
            sub_plan = dataclasses.replace(
                plan,
                name=f"{plan.name}[shard {position + 1}/{shards}]",
                entries=partitions[position],
            )
            # A shallow copy inherits the full configuration (and any
            # subclass behaviour); each shard just gets its slice of
            # the worker budget and its own warm pool.
            runner = copy.copy(self)
            runner.workers = shard_workers
            runner._pool = None
            try:
                results[position] = runner.run(sub_plan)
            except BaseException as exc:  # noqa: BLE001 - reraised in parent
                errors.append(exc)

        threads = [
            threading.Thread(
                target=run_shard, args=(position,),
                name=f"campaign-shard-{position}", daemon=True,
            )
            for position in range(shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        outcomes = [
            outcome for result in results for outcome in result.outcomes
        ]
        outcomes.sort(key=lambda outcome: outcome.index)
        return CampaignResult(
            name=plan.name,
            app=plan.app,
            seed=plan.seed,
            workers=self.workers,
            outcomes=outcomes,
            wall_time=time.perf_counter() - started,
            rerun_failures=self.rerun_failures,
        )

    # -- fleet mechanics ---------------------------------------------------------

    def _run_fleet(
        self,
        jobs: _t.Sequence[tuple[PlannedRecipe, _t.Optional[int]]],
        fail_fast: bool = False,
    ) -> dict[int, RecipeOutcome]:
        """Drain ``(entry, seed_override)`` jobs through the worker
        fleet; returns outcomes keyed by job *position* (not plan
        index — flake reruns submit the same entry several times)."""
        if self.backend == "processes":
            return self._run_process_fleet(jobs, fail_fast)
        executors: dict[int, RecipeExecutor] = {}
        stop_signal = threading.Event()

        def execute(worker_id: int, job: tuple[PlannedRecipe, _t.Optional[int]]) -> RecipeOutcome:
            # One executor per worker thread (run_fleet calls a given
            # worker_id from one thread only, so no lock is needed).
            executor = executors.get(worker_id)
            if executor is None:
                executor = executors[worker_id] = self._executor(
                    stop_event=stop_signal if fail_fast else None
                )
            entry, seed = job
            outcome = executor.execute(entry, seed=seed)
            outcome.worker = worker_id
            return outcome

        return run_fleet(
            jobs,
            execute,
            workers=self.workers,
            stop_when=(lambda outcome: outcome.conclusive_failure) if fail_fast else None,
            stop_signal=stop_signal,
        )

    def _run_process_fleet(
        self,
        jobs: _t.Sequence[tuple[PlannedRecipe, _t.Optional[int]]],
        fail_fast: bool,
    ) -> dict[int, RecipeOutcome]:
        """Drain the same jobs through spawn-isolated worker processes.

        Each job pickles ``(PlannedRecipe, seed_override)`` out to a
        worker and gets back the outcome's compact dict form; the merge
        back into :class:`RecipeOutcome` happens here, so callers see
        identical objects whichever backend ran the campaign.  The
        worker pool is kept warm between waves of the same run (main
        pass, then flake reruns) and closed when the run finishes.
        """
        if self._pool is None:
            spec = ProcessWorkerSpec(
                target=_process_execute,
                context={
                    "factory": self.factory,
                    "timeout": self.timeout,
                    "pacing": self.pacing,
                    "slice_virtual": self.slice_virtual,
                },
                on_crash=_crashed_outcome,
            )
            self._pool = ProcessPool(
                spec,
                size=self.workers,
                batch_size=self.batch_size,
                result_transport=self.result_transport,
            )
        try:
            raw = self._pool.run(
                jobs,
                stop_when=(
                    (lambda doc: doc["status"] in CONCLUSIVE_FAILURES)
                    if fail_fast
                    else None
                ),
            )
        except (TypeError, AttributeError, pickle.PicklingError) as exc:
            self._close_pool()
            raise CampaignError(
                "the processes backend pickles the deployment factory and"
                " plan entries to its workers; use a module-level factory"
                f" (not a lambda/closure): {exc}"
            ) from exc
        return {
            position: RecipeOutcome.from_dict(doc) for position, doc in raw.items()
        }

    def _close_pool(self) -> None:
        """Tear down the warm worker pool (hardened: join with timeout,
        then terminate/kill stragglers).  Safe to call when no pool was
        ever built."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.close()

    def _detect_flakes(
        self, plan: CampaignPlan, outcomes: list[RecipeOutcome]
    ) -> None:
        """Re-run every ``fail`` outcome ``rerun_failures`` times with
        perturbed seeds and classify it broken vs flaky in place."""
        entries = {entry.index: entry for entry in plan.entries}
        failed = [outcome for outcome in outcomes if outcome.status == "fail"]
        if not failed:
            return
        jobs: list[tuple[PlannedRecipe, _t.Optional[int]]] = []
        owners: list[RecipeOutcome] = []
        for outcome in failed:
            entry = entries[outcome.index]
            for attempt in range(1, self.rerun_failures + 1):
                jobs.append((entry, derive_seed(plan.seed, entry.name, attempt)))
                owners.append(outcome)
        rerun = self._run_fleet(jobs)
        for position, owner in enumerate(owners):
            attempt_outcome = rerun.get(position)
            owner.attempts.append(
                attempt_outcome.status if attempt_outcome is not None else "skipped"
            )
        for outcome in failed:
            reruns = outcome.attempts[1:]
            outcome.classification = (
                "flaky" if any(status == "pass" for status in reruns) else "broken"
            )
