"""Parallel fleet execution of a campaign plan.

Execution model
---------------
Every planned recipe runs on its **own freshly-built deployment**,
materialized inside the worker from the campaign's deployment factory
and seeded with the entry's :func:`~repro.campaign.plan.derive_seed`
value.  Nothing is shared between recipes — no simulator, no event
store, no agent state — so an outcome depends only on
``(factory, recipe, seed)`` and never on which worker executed it,
how many workers ran, or in what order the queue drained.  That is the
determinism contract the campaign tests pin.

Workers are threads pulling from a shared queue.  The simulated
control/data plane is pure CPU under the GIL, so thread workers pay no
serialization cost versus processes while still overlapping everything
that *does* wait on the wall clock: the per-recipe ``pacing`` floor
(modeling campaigns against live deployments, where an experiment
occupies a test slot for real time — fault windows, log settling) and,
in real-world embeddings, any operator-supplied I/O.

Guard rails: a per-recipe wall-clock ``timeout`` is enforced
cooperatively by slicing the virtual-time run loop (the kernel's
``peek``/``run(until=...)``), ``fail_fast`` stops dispatching after the
first conclusive failure, and failed recipes are re-run with perturbed
seeds to separate *broken* behaviour (fails under every seed) from
*flaky* behaviour (seed-sensitive).
"""

from __future__ import annotations

import time
import typing as _t

from repro.campaign.fleet import run_fleet
from repro.campaign.plan import CampaignPlan, DeploymentFactory, PlannedRecipe, derive_seed
from repro.campaign.results import CampaignResult, CheckOutcome, RecipeOutcome
from repro.core.gremlin import Gremlin
from repro.core.queries import QueryCache
from repro.errors import CampaignError, CampaignTimeoutError
from repro.loadgen import ClosedLoopLoad
from repro.observability.attribution import attribute_run

__all__ = ["RecipeExecutor", "CampaignRunner"]

#: Cap on serialized fault attributions per failing recipe, so one
#: pathological recipe cannot bloat the campaign dump.
MAX_ATTRIBUTIONS = 25


def _classify(checks: _t.Sequence[CheckOutcome]) -> str:
    """Fold a recipe's check outcomes into one status."""
    if not checks:
        return "inconclusive"
    if all(check.passed for check in checks):
        return "pass"
    if any(not check.passed and not check.inconclusive for check in checks):
        return "fail"
    return "inconclusive"


class RecipeExecutor:
    """Executes one planned recipe on a fresh, isolated deployment.

    Mirrors :meth:`Gremlin.run_recipe` (inject -> load -> settle ->
    drain -> check -> clear) but drives the simulator in bounded
    virtual-time slices so a wall-clock deadline can interrupt a
    runaway recipe between slices, and optionally pads each recipe to a
    ``pacing`` wall-clock floor.
    """

    def __init__(
        self,
        factory: DeploymentFactory,
        *,
        timeout: _t.Optional[float] = 60.0,
        pacing: float = 0.0,
        slice_virtual: float = 60.0,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise CampaignError(f"timeout must be > 0 or None, got {timeout}")
        if pacing < 0:
            raise CampaignError(f"pacing must be >= 0, got {pacing}")
        if slice_virtual <= 0:
            raise CampaignError(f"slice_virtual must be > 0, got {slice_virtual}")
        self.factory = factory
        self.timeout = timeout
        self.pacing = pacing
        self.slice_virtual = slice_virtual

    def execute(
        self, planned: PlannedRecipe, seed: _t.Optional[int] = None
    ) -> RecipeOutcome:
        """Run one planned recipe; never raises — failures become
        ``error``/``timeout`` outcomes so one bad recipe cannot take
        down the fleet."""
        started = time.monotonic()
        deadline = started + self.timeout if self.timeout is not None else None
        seed = planned.seed if seed is None else seed
        outcome = RecipeOutcome(
            index=planned.index,
            name=planned.name,
            pattern=planned.pattern,
            service=planned.service,
            seed=seed,
            status="error",
        )
        gremlin = None
        try:
            recipe = planned.recipe
            spec = planned.load
            deployment = self.factory().deploy(seed=seed)
            source = deployment.add_traffic_source(spec.entry, name=spec.source_name)
            gremlin = Gremlin(deployment)
            sim = deployment.sim

            window_start = sim.now
            orch_start = time.perf_counter()
            installation = gremlin.inject(*recipe.scenarios)
            outcome.orchestration_time = time.perf_counter() - orch_start

            load = ClosedLoopLoad(
                num_requests=spec.requests, think_time=spec.think_time, uri=spec.uri
            )
            sim.process(load.driver(source), name=f"load/{recipe.name}")
            if recipe.load is not None:
                sim.process(recipe.load(deployment), name=f"extra-load/{recipe.name}")
            self._run_drained(sim, deadline)
            settle = max(planned.settle, recipe.settle)
            if settle > 0:
                sim.run(until=sim.now + settle)
            drained = deployment.pipeline.drained()
            if not drained.triggered:
                self._run_drained(sim, deadline)
            window_end = sim.now
            outcome.window = (window_start, window_end)
            outcome.latencies = load.result.latencies

            assert_start = time.perf_counter()
            cache = QueryCache(deployment.store)
            for check in recipe.checks:
                for scope in check.scopes(since=window_start, until=window_end):
                    cache.search(scope)
            outcome.checks = [
                CheckOutcome.from_result(
                    check.run(cache, since=window_start, until=window_end)
                )
                for check in recipe.checks
            ]
            outcome.assertion_time = time.perf_counter() - assert_start
            outcome.status = _classify(outcome.checks)
            outcome.metrics = deployment.metrics_snapshot()
            if outcome.status == "fail":
                # Explain the failure: join the traces of faulted
                # requests against the rules this recipe installed.
                outcome.attributions = [
                    attribution.to_dict()
                    for attribution in attribute_run(
                        deployment.store,
                        installation.rules,
                        limit=MAX_ATTRIBUTIONS,
                    )
                ]
        except CampaignTimeoutError:
            outcome.status = "timeout"
            outcome.error = (
                f"recipe exceeded its {self.timeout:g}s wall-clock budget"
            )
        except Exception as exc:  # noqa: BLE001 - isolate fleet from one bad recipe
            outcome.status = "error"
            outcome.error = f"{type(exc).__name__}: {exc}"
        finally:
            if gremlin is not None:
                try:
                    gremlin.clear()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
        outcome.wall_time = time.monotonic() - started
        if self.pacing > 0:
            remaining = self.pacing - outcome.wall_time
            if remaining > 0:
                time.sleep(remaining)
            outcome.wall_time = time.monotonic() - started
        return outcome

    def _run_drained(self, sim, deadline: _t.Optional[float]) -> None:
        """Run the simulator until its event queue drains, in
        ``slice_virtual``-sized steps, checking the wall clock between
        slices."""
        while sim.peek() != float("inf"):
            if deadline is not None and time.monotonic() > deadline:
                raise CampaignTimeoutError()
            sim.run(until=sim.now + self.slice_virtual)


class CampaignRunner:
    """Executes a :class:`CampaignPlan` across N parallel workers.

    Parameters
    ----------
    factory:
        Deployment factory; each worker builds one fresh deployment per
        recipe from it.
    workers:
        Fleet size.  ``1`` executes serially (same code path).
    timeout:
        Per-recipe wall-clock budget in seconds (None disables).
    pacing:
        Minimum wall-clock seconds each recipe occupies its worker —
        models campaigns against live deployments where an experiment
        holds a test slot for real time.  0 runs at full simulation
        speed.
    fail_fast:
        Stop dispatching new recipes after the first conclusive
        failure; undispatched entries are reported as ``skipped``.
    rerun_failures:
        Flake detection: re-run each ``fail`` outcome this many times
        with perturbed seeds, classifying it ``flaky`` (passed at least
        once) or ``broken`` (failed every attempt).
    """

    def __init__(
        self,
        factory: DeploymentFactory,
        *,
        workers: int = 1,
        timeout: _t.Optional[float] = 60.0,
        pacing: float = 0.0,
        fail_fast: bool = False,
        rerun_failures: int = 0,
        slice_virtual: float = 60.0,
    ) -> None:
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        if rerun_failures < 0:
            raise CampaignError(f"rerun_failures must be >= 0, got {rerun_failures}")
        self.factory = factory
        self.workers = workers
        self.timeout = timeout
        self.pacing = pacing
        self.fail_fast = fail_fast
        self.rerun_failures = rerun_failures
        self.slice_virtual = slice_virtual

    def _executor(self) -> RecipeExecutor:
        return RecipeExecutor(
            self.factory,
            timeout=self.timeout,
            pacing=self.pacing,
            slice_virtual=self.slice_virtual,
        )

    def run(self, plan: CampaignPlan) -> CampaignResult:
        """Execute the whole plan; returns outcomes in plan order."""
        started = time.perf_counter()
        executed = self._run_fleet(
            [(entry, None) for entry in plan.entries], fail_fast=self.fail_fast
        )

        outcomes: list[RecipeOutcome] = []
        for position, entry in enumerate(plan.entries):
            outcome = executed.get(position)
            if outcome is None:
                outcome = RecipeOutcome(
                    index=entry.index,
                    name=entry.name,
                    pattern=entry.pattern,
                    service=entry.service,
                    seed=entry.seed,
                    status="skipped",
                )
            outcome.attempts = [outcome.status]
            outcomes.append(outcome)

        if self.rerun_failures > 0:
            self._detect_flakes(plan, outcomes)

        return CampaignResult(
            name=plan.name,
            app=plan.app,
            seed=plan.seed,
            workers=self.workers,
            outcomes=outcomes,
            wall_time=time.perf_counter() - started,
            rerun_failures=self.rerun_failures,
        )

    # -- fleet mechanics ---------------------------------------------------------

    def _run_fleet(
        self,
        jobs: _t.Sequence[tuple[PlannedRecipe, _t.Optional[int]]],
        fail_fast: bool = False,
    ) -> dict[int, RecipeOutcome]:
        """Drain ``(entry, seed_override)`` jobs through the worker
        fleet; returns outcomes keyed by job *position* (not plan
        index — flake reruns submit the same entry several times)."""
        executors: dict[int, RecipeExecutor] = {}

        def execute(worker_id: int, job: tuple[PlannedRecipe, _t.Optional[int]]) -> RecipeOutcome:
            # One executor per worker thread (run_fleet calls a given
            # worker_id from one thread only, so no lock is needed).
            executor = executors.get(worker_id)
            if executor is None:
                executor = executors[worker_id] = self._executor()
            entry, seed = job
            outcome = executor.execute(entry, seed=seed)
            outcome.worker = worker_id
            return outcome

        return run_fleet(
            jobs,
            execute,
            workers=self.workers,
            stop_when=(lambda outcome: outcome.conclusive_failure) if fail_fast else None,
        )

    def _detect_flakes(
        self, plan: CampaignPlan, outcomes: list[RecipeOutcome]
    ) -> None:
        """Re-run every ``fail`` outcome ``rerun_failures`` times with
        perturbed seeds and classify it broken vs flaky in place."""
        entries = {entry.index: entry for entry in plan.entries}
        failed = [outcome for outcome in outcomes if outcome.status == "fail"]
        if not failed:
            return
        jobs: list[tuple[PlannedRecipe, _t.Optional[int]]] = []
        owners: list[RecipeOutcome] = []
        for outcome in failed:
            entry = entries[outcome.index]
            for attempt in range(1, self.rerun_failures + 1):
                jobs.append((entry, derive_seed(plan.seed, entry.name, attempt)))
                owners.append(outcome)
        rerun = self._run_fleet(jobs)
        for position, owner in enumerate(owners):
            attempt_outcome = rerun.get(position)
            owner.attempts.append(
                attempt_outcome.status if attempt_outcome is not None else "skipped"
            )
        for outcome in failed:
            reruns = outcome.attempts[1:]
            outcome.classification = (
                "flaky" if any(status == "pass" for status in reruns) else "broken"
            )
