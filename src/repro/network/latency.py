"""Latency models for simulated network links.

The data-plane benchmarks in the paper run against real networks whose
one-way latencies are noisy; the case-study figures (Fig 5/6) are
dominated by injected delays measured in seconds, so sub-millisecond
link jitter is irrelevant to the reproduced shapes.  We still provide a
small family of models so experiments can check robustness of the
assertion logic to latency noise.

All models draw from a named, seeded RNG stream of the simulator, so a
given topology produces identical latencies run-to-run.
"""

from __future__ import annotations

import typing as _t

from repro.simulation.kernel import Simulator

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LognormalLatency",
    "NoLatency",
]


class LatencyModel:
    """Base class: maps each message transmission to a one-way delay."""

    def sample(self, sim: Simulator) -> float:
        """Return the one-way delay (virtual seconds) for one message."""
        raise NotImplementedError


class NoLatency(LatencyModel):
    """Zero-delay links; useful for logic-only unit tests."""

    def sample(self, sim: Simulator) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLatency()"


class FixedLatency(LatencyModel):
    """A constant one-way delay.

    The default data-plane link in :mod:`repro.apps` uses 500 µs,
    roughly a same-datacenter RTT of 1 ms.
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, sim: Simulator) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay!r})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float, stream: str = "latency.uniform") -> None:
        if not 0 <= low <= high:
            raise ValueError(f"require 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self.stream = stream

    def sample(self, sim: Simulator) -> float:
        return sim.rng(self.stream).uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class LognormalLatency(LatencyModel):
    """Heavy-tailed delay, the common empirical shape for service RTTs.

    Parameterized by the underlying normal's ``mu``/``sigma``; the
    sampled value is clamped below at ``floor`` to avoid pathological
    near-zero delays.
    """

    def __init__(
        self,
        mu: float,
        sigma: float,
        floor: float = 0.0,
        stream: str = "latency.lognormal",
    ) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.mu = mu
        self.sigma = sigma
        self.floor = floor
        self.stream = stream

    def sample(self, sim: Simulator) -> float:
        return max(self.floor, sim.rng(self.stream).lognormvariate(self.mu, self.sigma))

    def __repr__(self) -> str:
        return f"LognormalLatency(mu={self.mu!r}, sigma={self.sigma!r})"


def as_latency(value: _t.Union[float, LatencyModel, None]) -> LatencyModel:
    """Coerce a float (seconds) or None into a :class:`LatencyModel`."""
    if value is None:
        return NoLatency()
    if isinstance(value, LatencyModel):
        return value
    return FixedLatency(float(value))
