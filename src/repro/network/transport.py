"""Simulated connection-oriented transport (the TCP stand-in).

The paper's fault model (Section 3.1) enumerates what a microservice
can observe of a failing dependency: delayed responses, error
responses, invalid responses, connection timeouts, and failure to
establish the connection.  This transport exposes exactly those
observables:

* :meth:`Network.connect` fails with ``ConnectionRefusedError_`` when
  no listener is bound, with ``ConnectionTimeoutError`` when the
  destination is partitioned away (SYN blackholed), and with
  ``HostUnreachableError`` for unknown hosts.
* :meth:`ConnectionEnd.recv` fails with ``ConnectionResetError_`` when
  the peer resets — which is how a Gremlin ``Abort`` rule with
  ``Error=-1`` emulates an abrupt crash, per Section 5 of the paper.
* Messages in flight across a newly-partitioned link are silently
  dropped, so the caller's only signal is its own timeout.

Data units are opaque ``bytes`` payloads; the HTTP layer above encodes
and decodes them, which is what gives the ``Modify`` fault primitive
real bytes to rewrite.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.errors import (
    ConnectionRefusedError_,
    ConnectionResetError_,
    ConnectionTimeoutError,
    HostUnreachableError,
    NetworkError,
)
from repro.network.address import Address
from repro.network.latency import LatencyModel, as_latency
from repro.simulation.events import SimEvent
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Channel, ChannelClosed

__all__ = ["Network", "Host", "Listener", "Connection", "ConnectionEnd"]

#: Default one-way link latency: 0.5 ms (same-datacenter RTT ~1 ms).
DEFAULT_LINK_LATENCY = 0.0005

#: Default loopback latency for microservice -> sidecar hops: 10 µs.
DEFAULT_LOOPBACK_LATENCY = 0.00001

#: How long a connect attempt waits before concluding the destination is
#: unreachable (partitioned).  Mirrors a kernel SYN-retry budget.
DEFAULT_CONNECT_TIMEOUT = 3.0


class Network:
    """The simulated network fabric: hosts, links, partitions.

    A single :class:`Network` hosts an entire application deployment.
    Links are implicit (full mesh); latency comes from a default model
    with optional per-host-pair overrides.  Partitions are symmetric
    host-pair blocks that drop in-flight traffic and blackhole new
    connection attempts.
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency: _t.Union[float, LatencyModel, None] = DEFAULT_LINK_LATENCY,
        loopback_latency: _t.Union[float, LatencyModel, None] = DEFAULT_LOOPBACK_LATENCY,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        self.sim = sim
        self.default_latency = as_latency(default_latency)
        self.loopback_latency = as_latency(loopback_latency)
        self.connect_timeout = connect_timeout
        self._hosts: dict[str, Host] = {}
        self._pair_latency: dict[frozenset[str], LatencyModel] = {}
        self._partitions: set[frozenset[str]] = set()
        self._conn_ids = itertools.count(1)

    # -- topology -----------------------------------------------------------

    def add_host(self, name: str) -> "Host":
        """Create and register a host; names must be unique."""
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(self, name)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> "Host":
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise HostUnreachableError(f"no host named {name!r}") from None

    def has_host(self, name: str) -> bool:
        """True if a host with this name exists."""
        return name in self._hosts

    @property
    def hosts(self) -> list["Host"]:
        """All registered hosts (stable order of registration)."""
        return list(self._hosts.values())

    def set_latency(
        self, host_a: str, host_b: str, latency: _t.Union[float, LatencyModel]
    ) -> None:
        """Override the latency model for one host pair (symmetric)."""
        self._pair_latency[frozenset((host_a, host_b))] = as_latency(latency)

    def latency_between(self, host_a: str, host_b: str) -> float:
        """Sample a one-way delay for a message between two hosts."""
        if host_a == host_b:
            return self.loopback_latency.sample(self.sim)
        model = self._pair_latency.get(frozenset((host_a, host_b)), self.default_latency)
        return model.sample(self.sim)

    # -- partitions -------------------------------------------------------------

    def partition(self, host_a: str, host_b: str) -> None:
        """Block all traffic between two hosts (symmetric)."""
        self._partitions.add(frozenset((host_a, host_b)))

    def heal(self, host_a: str, host_b: str) -> None:
        """Remove a partition between two hosts (no-op if absent)."""
        self._partitions.discard(frozenset((host_a, host_b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self._partitions.clear()

    def is_partitioned(self, host_a: str, host_b: str) -> bool:
        """True if traffic between the two hosts is currently blocked."""
        return frozenset((host_a, host_b)) in self._partitions

    # -- connections ---------------------------------------------------------------

    def connect(
        self,
        src: "Host",
        dst: Address,
        timeout: float | None = None,
    ) -> SimEvent:
        """Open a connection from ``src`` to ``dst``.

        Returns an event that succeeds with a :class:`ConnectionEnd`
        (the client side) or fails with one of the transport errors.
        Refusal is signalled after one RTT; partition/blackhole after
        ``timeout`` (default: the network's connect timeout).
        """
        ev = self.sim.event()
        budget = self.connect_timeout if timeout is None else timeout

        if dst.is_loopback:
            dst_host: Host | None = src
        else:
            dst_host = self._hosts.get(dst.host)

        if dst_host is None:
            # Unknown host: fail after the connect budget, like a DNS
            # blackhole / unroutable address.
            self.sim._schedule_at(
                self.sim.now + budget,
                _failer(ev, HostUnreachableError(f"no route to host {dst.host!r}")),
            )
            return ev

        if src.name != dst_host.name and self.is_partitioned(src.name, dst_host.name):
            self.sim._schedule_at(
                self.sim.now + budget,
                _failer(
                    ev,
                    ConnectionTimeoutError(
                        f"connect {src.name} -> {dst}: network partition"
                    ),
                ),
            )
            return ev

        rtt = self.latency_between(src.name, dst_host.name) * 2
        listener = dst_host._listeners.get(dst.port)
        if listener is None or listener.closed:
            self.sim._schedule_at(
                self.sim.now + rtt,
                _failer(ev, ConnectionRefusedError_(f"connection refused: {dst}")),
            )
            return ev

        conn = Connection(self, next(self._conn_ids), src, dst_host, dst.port)
        # Handshake completes after one RTT; then both sides learn of it.
        done = self.sim.timeout(rtt)

        def _complete(_: SimEvent) -> None:
            if listener.closed:
                ev.fail(ConnectionRefusedError_(f"connection refused: {dst}"))
                return
            listener._deliver(conn.server_end)
            ev.succeed(conn.client_end)

        done.add_callback(_complete)
        return ev


def _failer(ev: SimEvent, exc: Exception) -> SimEvent:
    """Build a pseudo-event whose processing fails ``ev`` with ``exc``.

    Internal helper: the kernel heap stores events, so delayed failure
    is expressed as a tiny already-succeeded event with one callback.
    """
    trigger = SimEvent(ev.sim)
    trigger._ok = True  # noqa: SLF001 - kernel-internal construction
    trigger._value = None
    trigger.add_callback(lambda _e: ev.fail(exc))
    return trigger


class Host:
    """A machine (or container) on the simulated network."""

    def __init__(self, network: Network, name: str) -> None:
        self.network = network
        self.name = name
        self._listeners: dict[int, Listener] = {}

    @property
    def sim(self) -> Simulator:
        """The simulator this host's network runs on."""
        return self.network.sim

    def listen(self, port: int) -> "Listener":
        """Bind a listener on ``port``; returns the Listener."""
        if port in self._listeners and not self._listeners[port].closed:
            raise NetworkError(f"{self.name}: port {port} already bound")
        listener = Listener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, dst: Address, timeout: float | None = None) -> SimEvent:
        """Open an outbound connection; see :meth:`Network.connect`."""
        return self.network.connect(self, dst, timeout=timeout)

    def __repr__(self) -> str:
        return f"<Host {self.name!r} listeners={sorted(self._listeners)}>"


class Listener:
    """A bound port accepting inbound connections."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.closed = False
        self._accept_queue: Channel = Channel(host.sim, name=f"{host.name}:{port}/accept")
        self._on_connect: _t.Callable[["ConnectionEnd"], None] | None = None

    @property
    def address(self) -> Address:
        """The address this listener is bound to."""
        return Address(self.host.name, self.port)

    def accept(self) -> SimEvent:
        """Event yielding the next inbound :class:`ConnectionEnd`."""
        return self._accept_queue.get()

    def on_connect(self, callback: _t.Callable[["ConnectionEnd"], None]) -> None:
        """Deliver every new connection to ``callback`` instead of the
        accept queue — the idiom servers use to spawn a handler process
        per connection."""
        self._on_connect = callback
        # Drain anything already queued.
        while len(self._accept_queue):
            ev = self._accept_queue.get()
            callback(ev.value)

    def _deliver(self, server_end: "ConnectionEnd") -> None:
        if self._on_connect is not None:
            self._on_connect(server_end)
        else:
            self._accept_queue.put(server_end)

    def close(self) -> None:
        """Unbind: subsequent connects are refused."""
        self.closed = True
        self.host._listeners.pop(self.port, None)
        self._accept_queue.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Listener {self.address} {state}>"


class Connection:
    """A bidirectional byte-message pipe between two hosts.

    Holds the two :class:`ConnectionEnd` halves.  Application code only
    ever touches the ends; the Connection exists so resets and closes
    can coordinate both directions.
    """

    def __init__(
        self, network: Network, conn_id: int, client_host: Host, server_host: Host, port: int
    ) -> None:
        self.network = network
        self.id = conn_id
        self.client_host = client_host
        self.server_host = server_host
        self.port = port
        label = f"conn{conn_id}:{client_host.name}->{server_host.name}:{port}"
        self.client_end = ConnectionEnd(self, client_host, server_host, f"{label}/client")
        self.server_end = ConnectionEnd(self, server_host, client_host, f"{label}/server")
        self.client_end.peer = self.server_end
        self.server_end.peer = self.client_end

    def __repr__(self) -> str:
        return f"<Connection #{self.id} {self.client_host.name}->{self.server_host.name}:{self.port}>"


class ConnectionEnd:
    """One endpoint of a connection: send to the peer, recv from it."""

    def __init__(self, conn: Connection, local: Host, remote: Host, label: str) -> None:
        self.conn = conn
        self.local = local
        self.remote = remote
        self.label = label
        self.peer: "ConnectionEnd" | None = None  # set by Connection
        self._inbox: Channel = Channel(conn.network.sim, name=f"{label}/inbox")
        self.closed = False

    @property
    def sim(self) -> Simulator:
        """The simulator this connection runs on."""
        return self.conn.network.sim

    def send(self, payload: bytes) -> None:
        """Transmit ``payload`` to the peer after one link latency.

        Sends on a closed end raise ``ConnectionResetError_``; messages
        crossing a link that is partitioned *at delivery time* are
        dropped silently (the real-world behaviour that makes client
        timeouts necessary).
        """
        if self.closed:
            raise ConnectionResetError_(f"{self.label}: send on closed connection")
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError(f"payload must be bytes, got {type(payload).__name__}")
        network = self.conn.network
        delay = network.latency_between(self.local.name, self.remote.name)
        peer = self.peer
        assert peer is not None

        def _deliver(_: SimEvent) -> None:
            if peer._inbox.closed:
                return  # peer already gone; drop like a RST race
            if self.local.name != self.remote.name and network.is_partitioned(
                self.local.name, self.remote.name
            ):
                return  # dropped on the floor by the partition
            peer._inbox.put(bytes(payload))

        self.sim.timeout(delay).add_callback(_deliver)

    def recv(self) -> SimEvent:
        """Event yielding the next payload from the peer.

        Fails with ``ConnectionResetError_`` if the peer resets, or
        :class:`~repro.simulation.resources.ChannelClosed` on orderly
        close with nothing buffered.
        """
        return self._inbox.get()

    def close(self) -> None:
        """Orderly close of both directions (delivered after latency)."""
        self._shutdown(reset=False)

    def reset(self) -> None:
        """Abortive close: the peer's pending/future recv fails with
        ``ConnectionResetError_``.  This is the transport mechanism the
        Abort fault uses for ``Error=-1``."""
        self._shutdown(reset=True)

    def _shutdown(self, reset: bool) -> None:
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        assert peer is not None
        delay = self.conn.network.latency_between(self.local.name, self.remote.name)

        def _notify(_: SimEvent) -> None:
            if peer._inbox.closed:
                return
            if reset:
                peer._inbox.close(ConnectionResetError_(f"{peer.label}: connection reset by peer"))
            else:
                peer._inbox.close()
            peer.closed = True

        self.sim.timeout(delay).add_callback(_notify)
        if reset:
            # Local pending receives also fail immediately on reset.
            self._inbox.close(ConnectionResetError_(f"{self.label}: connection reset"))
        else:
            self._inbox.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<ConnectionEnd {self.label} {state}>"


# Re-export ChannelClosed so transport users need not import resources.
__all__.append("ChannelClosed")
