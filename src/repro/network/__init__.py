"""Simulated L4 network: addresses, latency models, transport.

The transport exposes precisely the failure observables of the paper's
fault model: refused connections, connect timeouts under partition,
resets, and silently-dropped in-flight messages.
"""

from repro.network.address import LOOPBACK, Address
from repro.network.latency import (
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    NoLatency,
    UniformLatency,
    as_latency,
)
from repro.network.transport import (
    Connection,
    ConnectionEnd,
    Host,
    Listener,
    Network,
)

__all__ = [
    "Address",
    "Connection",
    "ConnectionEnd",
    "FixedLatency",
    "Host",
    "LatencyModel",
    "Listener",
    "LognormalLatency",
    "LOOPBACK",
    "Network",
    "NoLatency",
    "UniformLatency",
    "as_latency",
]
