"""Network addresses for the simulated transport.

Addresses mirror the ``host:port`` form the paper's sidecar
configuration uses (``localhost:<port> -> <remotehost>[:<remoteport>]``)
so deployment descriptors in :mod:`repro.microservice.app` read exactly
like the paper's Section 6.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Address", "LOOPBACK"]

#: Conventional loopback host name, used for microservice -> sidecar hops.
LOOPBACK = "localhost"


@dataclasses.dataclass(frozen=True, order=True)
class Address:
    """An immutable ``host:port`` endpoint on the simulated network."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 < self.port < 65536:
            raise ValueError(f"port must be in (0, 65536), got {self.port}")

    @classmethod
    def parse(cls, text: str, default_port: int | None = None) -> "Address":
        """Parse ``"host:port"`` (or ``"host"`` with ``default_port``).

        >>> Address.parse("10.1.1.1:8080")
        Address(host='10.1.1.1', port=8080)
        >>> Address.parse("db", default_port=5432)
        Address(host='db', port=5432)
        """
        host, sep, port_text = text.partition(":")
        if sep:
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(f"invalid port in address {text!r}") from None
        elif default_port is not None:
            port = default_port
        else:
            raise ValueError(f"address {text!r} has no port and no default given")
        return cls(host, port)

    @property
    def is_loopback(self) -> bool:
        """True for the loopback pseudo-host (microservice -> sidecar)."""
        return self.host == LOOPBACK

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"
