"""Service definitions and handler context.

A :class:`ServiceDefinition` is the deploy-time description of one
microservice: its name, request handler, replica count, simulated
compute time, and — per dependency — the resilience policy its client
uses.  Definitions are pure data; :mod:`repro.microservice.app` turns
them into running instances on a simulator.

Handlers are generator functions ``handler(ctx, request)`` returning an
:class:`HttpResponse`.  ``ctx`` is a :class:`ServiceContext` giving the
handler its only capabilities: virtual sleep, downstream calls through
the sidecar (so Gremlin can see them), and per-instance state.  This
mirrors how a real polyglot microservice looks *from the network*: the
paper's whole premise (observation O1) is that internal logic is opaque
and only message exchanges matter.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.resilience.policy import PolicySpec
from repro.network.latency import LatencyModel
from repro.simulation.events import SimEvent
from repro.tracing import propagate

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.microservice.instance import ServiceInstance
    from repro.simulation.kernel import Simulator

__all__ = ["ServiceDefinition", "ServiceContext", "ServiceHandler", "DEFAULT_SERVICE_PORT"]

#: Conventional port every simulated microservice serves on.
DEFAULT_SERVICE_PORT = 8080

#: Handler signature: generator from (context, request) to HttpResponse.
ServiceHandler = _t.Callable[
    ["ServiceContext", HttpRequest],
    _t.Generator[_t.Any, _t.Any, HttpResponse],
]


def default_handler(
    ctx: "ServiceContext", request: HttpRequest
) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
    """Leaf-service behaviour: burn the service time, answer 200.

    Used by datastore stand-ins and benchmark tree leaves.
    """
    yield from ctx.work()
    return HttpResponse(200, body=f"ok from {ctx.service_name}".encode("utf-8"))


@dataclasses.dataclass
class ServiceDefinition:
    """Deploy-time description of one microservice.

    Parameters
    ----------
    name:
        Logical service name; nodes of the application graph.
    handler:
        Request handler generator; defaults to :func:`default_handler`.
    dependencies:
        Map of downstream service name -> :class:`PolicySpec` for the
        client calling it.  ``PolicySpec.naive()`` declares the
        dependency with no resilience patterns at all.
    instances:
        Replica count (paper Figure 3 tests rules across all instance
        pairs).
    service_time:
        Simulated compute per request, seconds or a
        :class:`~repro.network.latency.LatencyModel`.
    port:
        Serving port on each instance host.
    worker_pool:
        Max concurrent in-flight requests per instance (extra requests
        queue), or ``None`` for unbounded.  Lets overload experiments
        model real resource exhaustion.
    canary_instances:
        Number of *additional* replicas dedicated to test traffic
        (paper Section 9's state-cleanup proposal).  Sidecars route
        flows whose request ID matches the deployment's canary pattern
        (default ``test-*``) to these replicas, so experiments that
        mutate state never touch the production instances.
    """

    name: str
    handler: ServiceHandler = default_handler
    dependencies: dict[str, PolicySpec] = dataclasses.field(default_factory=dict)
    instances: int = 1
    service_time: _t.Union[float, LatencyModel] = 0.001
    port: int = DEFAULT_SERVICE_PORT
    worker_pool: _t.Optional[int] = None
    canary_instances: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.instances < 1:
            raise ValueError(f"instances must be >= 1, got {self.instances}")
        if self.worker_pool is not None and self.worker_pool < 1:
            raise ValueError(f"worker_pool must be >= 1, got {self.worker_pool}")
        if self.canary_instances < 0:
            raise ValueError(f"canary_instances must be >= 0, got {self.canary_instances}")

    def dependency_names(self) -> list[str]:
        """Downstream service names, in declaration order."""
        return list(self.dependencies)


class ServiceContext:
    """Capabilities a handler gets: clock, downstream calls, state.

    One context exists per service *instance*; handlers for concurrent
    requests on the same instance share it (and its ``state`` dict),
    which is how stateful behaviours like double-billing bugs are
    modelled.
    """

    def __init__(self, instance: "ServiceInstance") -> None:
        self._instance = instance
        #: Arbitrary per-instance state shared across requests.
        self.state: dict[str, _t.Any] = {}
        # Resolve the configured compute time once: work() runs on every
        # simulated request, and the isinstance/float() dance per call
        # shows up in campaign profiles.  Contexts are rebuilt on every
        # deploy, so definition edits between deploys still take effect.
        service_time = instance.definition.service_time
        if isinstance(service_time, LatencyModel):
            self._latency_model: _t.Optional[LatencyModel] = service_time
            self._fixed_work = 0.0
        else:
            self._latency_model = None
            self._fixed_work = float(service_time)

    @property
    def sim(self) -> "Simulator":
        """The simulator this instance runs on."""
        return self._instance.sim

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._instance.sim.now

    @property
    def service_name(self) -> str:
        """Logical name of the owning service."""
        return self._instance.definition.name

    @property
    def instance_id(self) -> str:
        """Physical instance ID (e.g. ``"servicea-0"``)."""
        return self._instance.instance_id

    @property
    def dependencies(self) -> list[str]:
        """Names of services this instance can call."""
        return list(self._instance.clients)

    def sleep(self, duration: float) -> SimEvent:
        """Event for a virtual-time sleep: ``yield ctx.sleep(0.5)``."""
        return self.sim.timeout(duration)

    def work(self) -> _t.Generator[_t.Any, _t.Any, None]:
        """Burn this service's configured compute time (subroutine)."""
        model = self._latency_model
        sim = self._instance.sim
        duration = self._fixed_work if model is None else model.sample(sim)
        if duration > 0:
            yield sim.timeout(duration)

    def call(
        self,
        dependency: str,
        request: HttpRequest,
        parent: _t.Optional[HttpRequest] = None,
    ) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
        """Call a declared downstream dependency (subroutine).

        Routes through this instance's sidecar agent (when deployed
        with one) so the call is observable and injectable.  ``parent``
        is the inbound request whose trace headers should propagate —
        the request ID *and* the enclosing span ID, so the sidecar can
        parent this call in the causal tree.  Pass it for every call
        made on behalf of a user request.

        Raises ``KeyError`` for undeclared dependencies — declaring the
        dependency is what puts the edge in the application graph.
        """
        client = self._instance.clients.get(dependency)
        if client is None:
            raise KeyError(
                f"{self.service_name} has no declared dependency {dependency!r};"
                f" declared: {self.dependencies}"
            )
        if parent is not None:
            propagate(parent, request)
        response = yield from client.call(request)
        return response

    def __repr__(self) -> str:
        return f"<ServiceContext {self.instance_id}>"
