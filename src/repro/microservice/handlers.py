"""Reusable handler factories for building application topologies.

Real microservices differ in business logic but share a few structural
shapes; these factories cover the shapes the paper's case studies and
benchmarks need, so topology modules stay declarative.
"""

from __future__ import annotations

import typing as _t

from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.service import ServiceContext

__all__ = [
    "static_handler",
    "fanout_handler",
    "chain_handler",
    "proxy_handler",
]


def static_handler(status: int = 200, body: bytes = b"ok") -> _t.Callable:
    """A leaf handler that burns service time and answers statically."""

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        return HttpResponse(status, body=body)

    return handler


def fanout_handler(
    dependencies: _t.Sequence[str],
    degrade_status: int = 500,
    partial_ok: bool = False,
) -> _t.Callable:
    """Call every dependency sequentially, then answer.

    ``partial_ok=True`` makes the service degrade gracefully: a failed
    dependency is noted in the body but the response is still 200 —
    the behaviour of a service with working fallbacks.  With
    ``partial_ok=False`` the first dependency failure turns into
    ``degrade_status``, modelling a service whose response *requires*
    all its dependencies (the shape that cascades).
    """

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        failures = []
        for dependency in dependencies:
            downstream = HttpRequest("GET", f"/{dependency.lower()}")
            try:
                response = yield from ctx.call(dependency, downstream, parent=request)
            except Exception as exc:  # noqa: BLE001 - any dependency failure
                failures.append(f"{dependency}:{type(exc).__name__}")
                response = None
            if response is not None and response.status >= 500:
                failures.append(f"{dependency}:{response.status}")
            if failures and not partial_ok:
                return HttpResponse(
                    degrade_status,
                    body=f"dependency failure: {failures[0]}".encode("utf-8"),
                )
        body = b"ok" if not failures else ("degraded: " + ",".join(failures)).encode("utf-8")
        return HttpResponse(200, body=body)

    return handler


def chain_handler(next_service: _t.Optional[str]) -> _t.Callable:
    """Pass-through chain hop: call the next service, relay its status.

    ``None`` makes it a chain terminator (static 200).
    """
    if next_service is None:
        return static_handler()

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        downstream = HttpRequest("GET", request.uri)
        try:
            response = yield from ctx.call(next_service, downstream, parent=request)
        except Exception as exc:  # noqa: BLE001
            return HttpResponse(502, body=f"chain broken: {type(exc).__name__}".encode())
        return HttpResponse(response.status, body=response.body)

    return handler


def proxy_handler(backend: str) -> _t.Callable:
    """Forward the inbound request to one backend verbatim."""

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        downstream = HttpRequest(request.method, request.uri, body=request.body)
        response = yield from ctx.call(backend, downstream, parent=request)
        return response

    return handler
