"""Per-dependency clients applying the resilience policy.

A :class:`DependencyClient` is what a microservice's code path to one
downstream service looks like: it sends HTTP requests (through the
sidecar agent when one is deployed) and wraps them in whatever subset
of the resilience patterns the service adopted.  The control flow per
logical call::

    fallback/raise <- breaker open?
    fallback/raise <- bulkhead full?
    loop attempts:
        per-attempt timeout -> HTTP call
        success (status < 500)  -> breaker.record_success, return
        failure (5xx / network / timeout / codec):
            breaker.record_failure
            retries left? backoff, continue
            else: fallback, or return the error response,
                  or re-raise the transport error

Failure classification follows the paper's fault model: 5xx statuses,
connection errors, resets, timeouts, and unparseable responses all
count as failures; 4xx statuses are the caller's own fault and are
returned as-is without burning retries.
"""

from __future__ import annotations

import typing as _t

from repro.errors import (
    BulkheadFullError,
    CircuitOpenError,
    CodecError,
    NetworkError,
    RequestTimeoutError,
)
from repro.http.client import HttpClient
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.resilience.circuit_breaker import BreakerState
from repro.microservice.resilience.policy import ResiliencePolicy
from repro.network.address import Address
from repro.simulation.kernel import Simulator

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.metrics import Counter, Gauge, MetricsRegistry

__all__ = ["DependencyClient", "CallStats"]

#: Gauge encoding of breaker state: merge-by-max reads as "worst
#: observed state" across workers and replicas.
_BREAKER_STATE_CODE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}

#: Exceptions classified as call failures (retryable, breaker-counted).
FAILURE_EXCEPTIONS = (NetworkError, RequestTimeoutError, CodecError)


class CallStats:
    """Counters a client keeps about its own behaviour, for tests."""

    def __init__(self) -> None:
        self.calls = 0
        self.attempts = 0
        self.successes = 0
        self.failures = 0
        self.retries = 0
        self.breaker_rejections = 0
        self.bulkhead_rejections = 0
        self.fallbacks = 0

    def __repr__(self) -> str:
        return (
            f"<CallStats calls={self.calls} attempts={self.attempts}"
            f" successes={self.successes} failures={self.failures}"
            f" retries={self.retries} fallbacks={self.fallbacks}>"
        )


class DependencyClient:
    """The policy-wrapped path from one caller instance to one callee."""

    def __init__(
        self,
        sim: Simulator,
        http: HttpClient,
        caller: str,
        dependency: str,
        target: _t.Union[Address, _t.Callable[[], Address]],
        policy: ResiliencePolicy,
        metrics: "_t.Optional[MetricsRegistry]" = None,
    ) -> None:
        self.sim = sim
        self.http = http
        self.caller = caller
        self.dependency = dependency
        #: Either a fixed address (the sidecar's loopback port, the
        #: normal case) or a resolver callable for sidecar-less
        #: deployments, where the client itself picks an instance.
        self.target = target
        self.policy = policy
        self.stats = CallStats()
        self._rng = sim.rng(f"client/{caller}->{dependency}")
        self._retries_total: "_t.Optional[Counter]" = None
        self._breaker_rejections_total: "_t.Optional[Counter]" = None
        self._breaker_gauge: "_t.Optional[Gauge]" = None
        if metrics is not None:
            self._retries_total = metrics.counter(
                "client_retries_total", src=caller, dst=dependency
            )
            self._breaker_rejections_total = metrics.counter(
                "client_breaker_rejections_total", src=caller, dst=dependency
            )
            if policy.breaker is not None:
                self._breaker_gauge = metrics.gauge(
                    "client_breaker_state", src=caller, dst=dependency
                )

    def _resolve_target(self) -> Address:
        if callable(self.target):
            return self.target()
        return self.target

    def call(
        self, request: HttpRequest
    ) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
        """One logical call with the full policy applied (subroutine).

        Returns the downstream response — including downstream *error*
        responses once retries are exhausted, since a real client hands
        the final 503 to the application.  Raises transport-level
        exceptions only when there is no HTTP response and no fallback
        to substitute (:class:`CircuitOpenError`,
        :class:`BulkheadFullError`, or the last network error).
        """
        policy = self.policy
        self.stats.calls += 1

        if policy.breaker is not None and not policy.breaker.allow_request():
            self.stats.breaker_rejections += 1
            self._count_breaker_rejection()
            fallback = self._try_fallback(request)
            if fallback is not None:
                return fallback
            raise CircuitOpenError(
                f"{self.caller} -> {self.dependency}: circuit breaker open"
            )

        if policy.bulkhead is not None:
            try:
                policy.bulkhead.acquire()
            except BulkheadFullError:
                self.stats.bulkhead_rejections += 1
                fallback = self._try_fallback(request)
                if fallback is not None:
                    return fallback
                raise

        try:
            response = yield from self._attempt_loop(request)
        finally:
            if policy.bulkhead is not None:
                policy.bulkhead.release()
        return response

    # -- internals ------------------------------------------------------------

    def _attempt_loop(
        self, request: HttpRequest
    ) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
        policy = self.policy
        last_error: Exception | None = None
        last_response: HttpResponse | None = None

        for attempt in range(policy.max_attempts):
            if attempt > 0:
                # The breaker gates *every* attempt: if the failures of
                # this very call tripped it, remaining retries must not
                # reach the wire (Hystrix semantics — and what the
                # HasCircuitBreaker check observes as silence).
                if policy.breaker is not None and not policy.breaker.allow_request():
                    self.stats.breaker_rejections += 1
                    self._count_breaker_rejection()
                    break
                self.stats.retries += 1
                if self._retries_total is not None:
                    self._retries_total.inc()
                assert policy.retry is not None
                backoff = policy.retry.backoff(attempt - 1, rng=self._rng)
                if backoff > 0:
                    yield self.sim.timeout(backoff)
            self.stats.attempts += 1
            try:
                response = yield from self.http.call(
                    self._resolve_target(), request.copy(), timeout=policy.attempt_timeout
                )
            except FAILURE_EXCEPTIONS as exc:
                last_error, last_response = exc, None
                self._record_failure()
                continue
            if response.status >= 500:
                last_error, last_response = None, response
                self._record_failure()
                continue
            # 2xx/3xx/4xx: the call reached the service and came back;
            # 4xx is the caller's problem, not an availability failure.
            self.stats.successes += 1
            if policy.breaker is not None:
                policy.breaker.record_success()
                self._update_breaker_gauge()
            return response

        # All attempts failed.
        fallback = self._try_fallback(request)
        if fallback is not None:
            return fallback
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error

    def _record_failure(self) -> None:
        self.stats.failures += 1
        if self.policy.breaker is not None:
            self.policy.breaker.record_failure()
            self._update_breaker_gauge()

    def _count_breaker_rejection(self) -> None:
        if self._breaker_rejections_total is not None:
            self._breaker_rejections_total.inc()
        self._update_breaker_gauge()

    def _update_breaker_gauge(self) -> None:
        if self._breaker_gauge is not None:
            assert self.policy.breaker is not None
            self._breaker_gauge.set(_BREAKER_STATE_CODE[self.policy.breaker.state])

    def _try_fallback(self, request: HttpRequest) -> HttpResponse | None:
        if self.policy.fallback is None:
            return None
        self.stats.fallbacks += 1
        return self.policy.fallback(request)

    def __repr__(self) -> str:
        return (
            f"<DependencyClient {self.caller} -> {self.dependency}"
            f" via {self.target} [{self.policy.describe()}]>"
        )
