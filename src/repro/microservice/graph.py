"""The logical application graph.

Paper Section 4.2: "The operator is also expected to provide a logical
application graph: a directed graph describing the caller/callee
relationship between different microservices."  The Recipe Translator
walks this graph to decompose high-level scenarios (``dependents`` of a
crashed service, edges across a partition cut) into per-edge fault
rules.

Backed by :mod:`networkx` so standard graph algorithms (reachability,
cuts) come for free, with a thin domain wrapper enforcing the
invariants recipes rely on.
"""

from __future__ import annotations

import typing as _t

import networkx as nx

from repro.errors import RecipeError

__all__ = ["ApplicationGraph"]


class ApplicationGraph:
    """Directed caller -> callee graph over logical service names."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: _t.Iterable[tuple[str, str]]) -> "ApplicationGraph":
        """Build from ``(caller, callee)`` pairs.

        >>> g = ApplicationGraph.from_edges([("A", "B"), ("B", "C")])
        >>> g.dependents("C")
        ['B']
        """
        graph = cls()
        for caller, callee in edges:
            graph.add_dependency(caller, callee)
        return graph

    def add_service(self, name: str) -> None:
        """Register a service node (idempotent)."""
        if not name:
            raise RecipeError("service name must be non-empty")
        self._graph.add_node(name)

    def add_dependency(self, caller: str, callee: str) -> None:
        """Record that ``caller`` makes API calls to ``callee``."""
        if caller == callee:
            raise RecipeError(f"service {caller!r} cannot depend on itself")
        self._graph.add_edge(caller, callee)

    # -- queries (the vocabulary of paper Section 5's recipes) --------------

    def services(self) -> list[str]:
        """All service names."""
        return list(self._graph.nodes)

    def has_service(self, name: str) -> bool:
        """True if ``name`` is a node of the graph."""
        return self._graph.has_node(name)

    def edges(self) -> list[tuple[str, str]]:
        """All ``(caller, callee)`` edges."""
        return list(self._graph.edges)

    def dependents(self, service: str) -> list[str]:
        """Services that *call* ``service`` (its upstream neighbours).

        This is the ``dependents()`` helper the paper's Crash/Hang/
        Overload recipes iterate over.
        """
        self._require(service)
        return list(self._graph.predecessors(service))

    def dependencies(self, service: str) -> list[str]:
        """Services that ``service`` calls (its downstream neighbours)."""
        self._require(service)
        return list(self._graph.successors(service))

    def downstream_closure(self, service: str) -> set[str]:
        """Every service transitively reachable from ``service``."""
        self._require(service)
        return set(nx.descendants(self._graph, service))

    def upstream_closure(self, service: str) -> set[str]:
        """Every service that can transitively reach ``service``."""
        self._require(service)
        return set(nx.ancestors(self._graph, service))

    def edges_across(
        self, group_a: _t.Iterable[str], group_b: _t.Iterable[str]
    ) -> list[tuple[str, str]]:
        """Edges crossing the cut between two service groups (either
        direction).  This is the cut the NetworkPartition scenario
        installs reset-Aborts along (paper Section 5)."""
        set_a = set(group_a)
        set_b = set(group_b)
        overlap = set_a & set_b
        if overlap:
            raise RecipeError(f"partition groups overlap: {sorted(overlap)}")
        for name in set_a | set_b:
            self._require(name)
        crossing = []
        for caller, callee in self._graph.edges:
            if (caller in set_a and callee in set_b) or (caller in set_b and callee in set_a):
                crossing.append((caller, callee))
        return crossing

    def entry_services(self) -> list[str]:
        """Services nothing calls — the user-facing edge (e.g. Web App)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def leaf_services(self) -> list[str]:
        """Services that call nothing — datastores and third parties."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def validate_services(self, names: _t.Iterable[str]) -> None:
        """Raise :class:`RecipeError` if any name is not in the graph.

        Recipes are validated against the graph before any rule reaches
        the data plane, so a typo fails fast instead of silently
        injecting nothing.
        """
        unknown = [n for n in names if not self._graph.has_node(n)]
        if unknown:
            raise RecipeError(
                f"services not in application graph: {unknown}; known: {sorted(self._graph.nodes)}"
            )

    def to_networkx(self) -> "nx.DiGraph":
        """A copy of the underlying networkx digraph, for analysis."""
        return self._graph.copy()

    # -- internals ------------------------------------------------------------

    def _require(self, name: str) -> None:
        if not self._graph.has_node(name):
            raise RecipeError(f"unknown service {name!r} (not in application graph)")

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._graph.has_node(name)

    def __repr__(self) -> str:
        return (
            f"<ApplicationGraph services={self._graph.number_of_nodes()}"
            f" edges={self._graph.number_of_edges()}>"
        )
