"""A running physical instance of a microservice.

Owns the instance's host, HTTP server, worker pool, handler context,
and the per-dependency clients.  Dependency clients are wired by the
:class:`~repro.microservice.app.Application` deployer, which decides
whether calls go through a colocated Gremlin agent (the normal case)
or directly to the callee (a deployment without sidecars).
"""

from __future__ import annotations

import typing as _t

from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.microservice.clients import DependencyClient
from repro.microservice.service import ServiceContext, ServiceDefinition
from repro.network.address import Address
from repro.network.transport import Host
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Semaphore

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.metrics import Counter, MetricsRegistry

__all__ = ["ServiceInstance"]


class ServiceInstance:
    """One replica of a service, bound to its own simulated host."""

    def __init__(
        self,
        sim: Simulator,
        definition: ServiceDefinition,
        host: Host,
        index: int,
        canary: bool = False,
    ) -> None:
        self.sim = sim
        self.definition = definition
        self.host = host
        self.index = index
        #: True for replicas dedicated to test traffic (paper Section 9).
        self.canary = canary
        tag = "canary-" if canary else ""
        self.instance_id = f"{definition.name.lower()}-{tag}{index}"
        self.clients: dict[str, DependencyClient] = {}
        self.ctx = ServiceContext(self)
        self.server = HttpServer(
            host, definition.port, self._handle, name=self.instance_id
        )
        self._workers: Semaphore | None = (
            Semaphore(sim, definition.worker_pool, name=f"{self.instance_id}/workers")
            if definition.worker_pool is not None
            else None
        )
        #: Requests that had to queue for a worker, for overload analysis.
        self.queued_requests = 0
        # Metric handles, installed by the deployer via enable_metrics.
        self._requests_total: "_t.Optional[Counter]" = None
        self._queued_total: "_t.Optional[Counter]" = None

    def enable_metrics(self, registry: "MetricsRegistry") -> None:
        """Register this instance's per-service request counters."""
        service = self.definition.name
        self._requests_total = registry.counter("service_requests_total", service=service)
        self._queued_total = registry.counter(
            "service_queued_requests_total", service=service
        )

    @property
    def address(self) -> Address:
        """The address this instance serves on."""
        return Address(self.host.name, self.definition.port)

    @property
    def running(self) -> bool:
        """True while the instance's HTTP server is bound."""
        return self.server.running

    def start(self) -> "ServiceInstance":
        """Bind the server; the deployer calls this after wiring clients."""
        self.server.start()
        return self

    def stop(self) -> None:
        """Unbind the server — a *real* crash/stop, as opposed to the
        emulated crash Gremlin stages with Abort rules.  Used by tests
        that compare emulated against actual failures."""
        self.server.stop()

    def add_client(self, client: DependencyClient) -> None:
        """Attach the policy-wrapped client for one dependency."""
        self.clients[client.dependency] = client

    def _handle(
        self, request: HttpRequest
    ) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
        if self._requests_total is not None:
            self._requests_total.inc()
        if self._workers is None:
            response = yield from self.definition.handler(self.ctx, request)
            return response
        acquire = self._workers.acquire()
        if not acquire.triggered:
            self.queued_requests += 1
            if self._queued_total is not None:
                self._queued_total.inc()
        yield acquire
        try:
            response = yield from self.definition.handler(self.ctx, request)
        finally:
            self._workers.release()
        return response

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<ServiceInstance {self.instance_id}@{self.address} {state}>"
