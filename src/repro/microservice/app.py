"""Application assembly: definitions -> a running simulated deployment.

:class:`Application` collects :class:`ServiceDefinition` objects;
:meth:`Application.deploy` materializes them into a
:class:`Deployment`: one simulated host per replica, a Gremlin agent
sidecar on every host that makes outbound calls, loopback routes per
dependency, registry entries, and the shared log pipeline/event store.

The deployment also derives the *logical application graph* the control
plane needs (paper Section 4.2) from the declared dependencies, and can
attach a traffic source — a client host with its own sidecar, so test
load enters the system through a Gremlin agent and the behaviour of
edge services is observable too (paper Section 6, "test load can be
injected via a Gremlin agent").
"""

from __future__ import annotations

import typing as _t

from repro.agent.proxy import GremlinAgent
from repro.errors import RecipeError
from repro.http.client import HttpClient
from repro.logstore.pipeline import LogPipeline
from repro.logstore.store import EventStore
from repro.microservice.clients import DependencyClient
from repro.microservice.graph import ApplicationGraph
from repro.microservice.instance import ServiceInstance
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceDefinition
from repro.network.latency import LatencyModel
from repro.network.transport import Network
from repro.observability.metrics import MetricsRegistry
from repro.registry.registry import InstanceRecord, ServiceRegistry
from repro.simulation.kernel import Simulator

__all__ = ["Application", "Deployment", "TrafficSource"]

#: First loopback port assigned to sidecar routes on each host.
SIDECAR_BASE_PORT = 9000


class Application:
    """A named collection of service definitions, ready to deploy."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._definitions: dict[str, ServiceDefinition] = {}
        #: Whether deployments of this application mint span records by
        #: default.  :meth:`deploy` honours it when its ``tracing``
        #: parameter is left ``None``, so callers that deploy through a
        #: fixed-signature factory (the campaign runner, benchmarks)
        #: can still toggle tracing per application.
        self.default_tracing = True

    def add_service(self, definition: ServiceDefinition) -> "Application":
        """Register one service definition (chainable)."""
        if definition.name in self._definitions:
            raise RecipeError(f"service {definition.name!r} already defined")
        self._definitions[definition.name] = definition
        return self

    def add_services(self, definitions: _t.Iterable[ServiceDefinition]) -> "Application":
        """Register several definitions (chainable)."""
        for definition in definitions:
            self.add_service(definition)
        return self

    @property
    def definitions(self) -> dict[str, ServiceDefinition]:
        """Name -> definition map (copy)."""
        return dict(self._definitions)

    def logical_graph(self) -> ApplicationGraph:
        """The caller/callee graph implied by declared dependencies."""
        graph = ApplicationGraph()
        for definition in self._definitions.values():
            graph.add_service(definition.name)
            for dependency in definition.dependency_names():
                graph.add_dependency(definition.name, dependency)
        return graph

    def validate(self) -> None:
        """Every declared dependency must itself be a defined service."""
        for definition in self._definitions.values():
            for dependency in definition.dependency_names():
                if dependency not in self._definitions:
                    raise RecipeError(
                        f"{definition.name!r} depends on undefined service {dependency!r}"
                    )

    def deploy(
        self,
        sim: _t.Optional[Simulator] = None,
        seed: int = 0,
        matcher_strategy: str = "table",
        scheduler: _t.Optional[str] = None,
        log_shipping_delay: float = 0.0,
        log_loss_probability: float = 0.0,
        log_flush_size: int = 1,
        store_strategy: str = "indexed",
        default_link_latency: _t.Union[float, LatencyModel, None] = 0.0005,
        sidecars: bool = True,
        tracing: _t.Optional[bool] = None,
    ) -> "Deployment":
        """Materialize the application into a running deployment.

        ``sidecars=False`` deploys without Gremlin agents: clients dial
        destination instances directly (round-robin at the client).
        Such a deployment cannot be fault-injected or observed — it
        exists as the baseline for proxy-overhead ablations.

        ``tracing`` controls span minting at the sidecars (``None``
        defers to :attr:`default_tracing`); disabling it keeps plain
        request/reply observation working but removes the causal-tree
        fields — the tracing-overhead ablation baseline.

        ``scheduler`` picks the kernel scheduler implementation for a
        freshly created simulator (``None`` = process default); ignored
        when an existing ``sim`` is passed in.  Outcomes are identical
        either way — the knob exists for equivalence testing.
        """
        self.validate()
        return Deployment(
            self,
            sim=sim if sim is not None else Simulator(seed=seed, scheduler=scheduler),
            matcher_strategy=matcher_strategy,
            log_shipping_delay=log_shipping_delay,
            log_loss_probability=log_loss_probability,
            log_flush_size=log_flush_size,
            store_strategy=store_strategy,
            default_link_latency=default_link_latency,
            sidecars=sidecars,
            tracing=self.default_tracing if tracing is None else tracing,
        )

    def __repr__(self) -> str:
        return f"<Application {self.name!r} services={list(self._definitions)}>"


class Deployment:
    """A running simulated deployment of an :class:`Application`."""

    def __init__(
        self,
        application: Application,
        sim: Simulator,
        matcher_strategy: str = "table",
        log_shipping_delay: float = 0.0,
        log_loss_probability: float = 0.0,
        log_flush_size: int = 1,
        store_strategy: str = "indexed",
        default_link_latency: _t.Union[float, LatencyModel, None] = 0.0005,
        sidecars: bool = True,
        tracing: bool = True,
    ) -> None:
        self.application = application
        self.sim = sim
        self.network = Network(sim, default_latency=default_link_latency)
        self.registry = ServiceRegistry()
        self.store = EventStore(strategy=store_strategy)
        self.tracing = tracing
        #: Deployment-wide metrics registry: sidecars, instances and
        #: dependency clients all record into it; campaign workers merge
        #: per-deployment snapshots afterwards.
        self.metrics = MetricsRegistry()
        self.pipeline = LogPipeline(
            sim,
            self.store,
            shipping_delay=log_shipping_delay,
            loss_probability=log_loss_probability,
            flush_size=log_flush_size,
        )
        self.graph = application.logical_graph()
        self.matcher_strategy = matcher_strategy
        self.sidecars = sidecars
        self.instances: dict[str, list[ServiceInstance]] = {}
        self.agents: list[GremlinAgent] = []
        self._traffic_sources: dict[str, TrafficSource] = {}
        self._build()

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        definitions = self.application.definitions
        # Create all instances first so the registry can resolve targets
        # regardless of declaration order.
        for definition in definitions.values():
            replicas = []
            for index in range(definition.instances):
                host = self.network.add_host(f"{definition.name.lower()}-{index}")
                replicas.append(ServiceInstance(self.sim, definition, host, index))
            for index in range(definition.canary_instances):
                host = self.network.add_host(f"{definition.name.lower()}-canary-{index}")
                replicas.append(
                    ServiceInstance(self.sim, definition, host, index, canary=True)
                )
            self.instances[definition.name] = replicas
        # Wire sidecars + clients, register, and start.
        for definition in definitions.values():
            for instance in self.instances[definition.name]:
                instance.enable_metrics(self.metrics)
                agent = self._wire_instance(instance)
                self.registry.register(
                    InstanceRecord(
                        service=definition.name,
                        instance_id=instance.instance_id,
                        address=instance.address,
                        agent=agent,
                        canary=instance.canary,
                    )
                )
                instance.start()

    def _wire_instance(self, instance: ServiceInstance) -> GremlinAgent | None:
        definition = instance.definition
        dependencies = definition.dependency_names()
        if not dependencies:
            return None
        if not self.sidecars:
            self._wire_direct_clients(instance)
            return None
        agent = GremlinAgent(
            self.sim,
            instance.host,
            owner_service=definition.name,
            owner_instance=instance.instance_id,
            registry=self.registry,
            pipeline=self.pipeline,
            matcher_strategy=self.matcher_strategy,
            metrics=self.metrics,
            trace_spans=self.tracing,
        )
        http = HttpClient(instance.host)
        for offset, dependency in enumerate(dependencies):
            port = SIDECAR_BASE_PORT + offset
            agent.add_route(port, dependency)
            policy_spec = definition.dependencies[dependency]
            policy = policy_spec.build(
                self.sim, name=f"{instance.instance_id}->{dependency}"
            )
            instance.add_client(
                DependencyClient(
                    self.sim,
                    http,
                    caller=definition.name,
                    dependency=dependency,
                    target=agent.route_address(dependency),
                    policy=policy,
                    metrics=self.metrics,
                )
            )
        agent.start()
        self.agents.append(agent)
        return agent

    def _wire_direct_clients(self, instance: ServiceInstance) -> None:
        """Sidecar-less wiring: clients dial destination instances
        directly with client-side round-robin.  Baseline for the proxy
        overhead ablation — no observation, no injection."""
        definition = instance.definition
        http = HttpClient(instance.host)
        for dependency in definition.dependency_names():
            counters = {"next": 0}

            def resolver(dep=dependency, counters=counters):
                addresses = self.registry.addresses(dep)
                index = counters["next"]
                counters["next"] = index + 1
                return addresses[index % len(addresses)]

            policy = definition.dependencies[dependency].build(
                self.sim, name=f"{instance.instance_id}->{dependency}"
            )
            instance.add_client(
                DependencyClient(
                    self.sim,
                    http,
                    caller=definition.name,
                    dependency=dependency,
                    target=resolver,
                    policy=policy,
                    metrics=self.metrics,
                )
            )

    # -- observability -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Plain-data snapshot of every metric series in the deployment.

        Mergeable with other deployments' snapshots via
        :func:`repro.observability.metrics.merge_snapshots` — how
        campaigns aggregate across recipes and workers.
        """
        return self.metrics.snapshot()

    # -- lookups ----------------------------------------------------------------

    def instances_of(self, service: str) -> list[ServiceInstance]:
        """All replicas of a service (production first, then canaries)."""
        try:
            return self.instances[service]
        except KeyError:
            raise RecipeError(f"unknown service {service!r}") from None

    def production_instances_of(self, service: str) -> list[ServiceInstance]:
        """Only the replicas serving ordinary (non-canary) traffic."""
        return [instance for instance in self.instances_of(service) if not instance.canary]

    def canaries_of(self, service: str) -> list[ServiceInstance]:
        """Only the canary replicas dedicated to test traffic."""
        return [instance for instance in self.instances_of(service) if instance.canary]

    def agents_of(self, service: str) -> list[GremlinAgent]:
        """The sidecar agents of every replica of ``service`` (may be
        empty when the service has no outbound dependencies).

        Traffic sources count: their agents carry the source's name as
        ``owner_service``, so rules with ``src=<source>`` reach them.
        """
        if service not in self.instances and service not in self._traffic_sources:
            raise RecipeError(f"unknown service {service!r}")
        return [agent for agent in self.agents if agent.owner_service == service]

    def client_of(self, service: str, dependency: str, replica: int = 0) -> DependencyClient:
        """The dependency client of one replica, for white-box tests."""
        return self.instances_of(service)[replica].clients[dependency]

    # -- traffic sources ---------------------------------------------------------

    def add_traffic_source(
        self,
        target_service: str,
        name: str = "user",
        policy: _t.Optional[PolicySpec] = None,
    ) -> "TrafficSource":
        """Attach an external client (load-injection point).

        The source gets its own host and sidecar agent fronting
        ``target_service``, so the test load itself is observable and
        injectable — ``GetRequests(name, target_service)`` works and
        rules with ``src=name`` apply.
        """
        if name in self._traffic_sources:
            raise RecipeError(f"traffic source {name!r} already exists")
        if target_service not in self.instances:
            raise RecipeError(f"unknown target service {target_service!r}")
        source = TrafficSource(self, name, target_service, policy or PolicySpec.naive())
        self._traffic_sources[name] = source
        self.graph.add_dependency(name, target_service)
        return source

    def traffic_source(self, name: str = "user") -> "TrafficSource":
        """Look up a previously-attached traffic source."""
        return self._traffic_sources[name]

    def __repr__(self) -> str:
        counts = {name: len(replicas) for name, replicas in self.instances.items()}
        return f"<Deployment {self.application.name!r} {counts}>"


class TrafficSource:
    """An external client host with its own sidecar agent.

    Exposes a :class:`DependencyClient` toward the target service; the
    load generators in :mod:`repro.loadgen` drive it.
    """

    def __init__(
        self,
        deployment: Deployment,
        name: str,
        target_service: str,
        policy_spec: PolicySpec,
    ) -> None:
        self.deployment = deployment
        self.name = name
        self.target_service = target_service
        sim = deployment.sim
        self.host = deployment.network.add_host(f"{name.lower()}-src")
        self.agent: GremlinAgent | None = None
        if deployment.sidecars:
            self.agent = GremlinAgent(
                sim,
                self.host,
                owner_service=name,
                owner_instance=f"{name.lower()}-src",
                registry=deployment.registry,
                pipeline=deployment.pipeline,
                matcher_strategy=deployment.matcher_strategy,
                metrics=deployment.metrics,
                trace_spans=deployment.tracing,
            )
            self.agent.add_route(SIDECAR_BASE_PORT, target_service)
            self.agent.start()
            deployment.agents.append(self.agent)
            target: _t.Any = self.agent.route_address(target_service)
        else:
            counters = {"next": 0}

            def target(dep=target_service, counters=counters):
                addresses = deployment.registry.addresses(dep)
                index = counters["next"]
                counters["next"] = index + 1
                return addresses[index % len(addresses)]

        self.client = DependencyClient(
            sim,
            HttpClient(self.host),
            caller=name,
            dependency=target_service,
            target=target,
            policy=policy_spec.build(sim, name=f"{name}->{target_service}"),
            metrics=deployment.metrics,
        )

    @property
    def sim(self) -> Simulator:
        """The simulator this source runs on."""
        return self.deployment.sim

    def __repr__(self) -> str:
        return f"<TrafficSource {self.name!r} -> {self.target_service!r}>"
