"""The bulkhead resilience pattern (paper Section 2.1).

    "If a shared thread pool is used to make API calls to multiple
    microservices, thread pool resources can be quickly exhausted when
    one of the downstream services degrades. ... The bulkhead pattern
    mitigates this issue by assigning an independent thread pool for
    each type of dependent microservice being called."

A bulkhead here is a bounded concurrency pool per dependency; when a
slow dependency saturates its pool, further calls to *that* dependency
are rejected immediately (``BulkheadFullError``) while calls to other
dependencies continue at full rate — the behaviour
``HasBulkhead(Src, SlowDst, Rate)`` checks for.
"""

from __future__ import annotations

from repro.errors import BulkheadFullError
from repro.simulation.kernel import Simulator
from repro.simulation.resources import Semaphore

__all__ = ["Bulkhead"]


class Bulkhead:
    """A per-dependency concurrency limit with reject-on-full semantics."""

    def __init__(self, sim: Simulator, max_concurrent: int, name: str = "bulkhead") -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.sim = sim
        self.name = name
        self.max_concurrent = max_concurrent
        self._pool = Semaphore(sim, max_concurrent, name=name)
        #: Calls rejected because the pool was full, for diagnostics.
        self.rejected = 0

    @property
    def in_use(self) -> int:
        """Slots currently held by in-flight calls."""
        return self._pool.in_use

    @property
    def available(self) -> int:
        """Free slots right now."""
        return self._pool.available

    def acquire(self) -> None:
        """Take a slot or raise :class:`BulkheadFullError` immediately.

        Rejecting rather than queueing is the point of the pattern:
        queued callers would tie up the caller's own resources, which
        is exactly the failure mode bulkheads exist to prevent.
        """
        if not self._pool.try_acquire():
            self.rejected += 1
            raise BulkheadFullError(
                f"bulkhead {self.name!r} full ({self.max_concurrent} in flight)"
            )

    def release(self) -> None:
        """Return a slot after the call completes (success or failure)."""
        self._pool.release()

    def __repr__(self) -> str:
        return f"<Bulkhead {self.name!r} {self.in_use}/{self.max_concurrent} in use>"
