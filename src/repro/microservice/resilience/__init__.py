"""Resilience design patterns (paper Section 2.1).

Timeouts, bounded retries, circuit breakers and bulkheads — the four
best-practice patterns whose presence (or absence) Gremlin's assertion
checker validates from network observations alone.
"""

from repro.microservice.resilience.bulkhead import Bulkhead
from repro.microservice.resilience.circuit_breaker import BreakerState, CircuitBreaker
from repro.microservice.resilience.policy import PolicySpec, ResiliencePolicy
from repro.microservice.resilience.retry import RetryPolicy
from repro.microservice.resilience.timeout import TimeoutPolicy

__all__ = [
    "BreakerState",
    "Bulkhead",
    "CircuitBreaker",
    "PolicySpec",
    "ResiliencePolicy",
    "RetryPolicy",
    "TimeoutPolicy",
]
