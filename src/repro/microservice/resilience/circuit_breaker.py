"""The circuit-breaker resilience pattern (paper Section 2.1).

    "Circuit breakers prevent failures from cascading across the
    microservice chain.  When repeated calls to a microservice fail,
    the circuit breaker transitions to open mode and the caller service
    returns a cached (or default) response to its upstream microservice.
    After a fixed time period, the caller attempts to re-establish
    connectivity with the failed downstream service.  If successful,
    the circuit is closed again."

State machine::

             failures >= failure_threshold
    CLOSED ---------------------------------> OPEN
      ^                                        | recovery_timeout elapses
      |   successes >= success_threshold       v
      +------------------------------------ HALF_OPEN
                                               | any failure
                                               v
                                              OPEN (timer restarts)

The checker's ``HasCircuitBreaker(Src, Dst, Threshold, Tdelta,
SuccessThreshold)`` verifies the observable consequences: after
``Threshold`` failures, no requests for ``Tdelta``; then trial traffic;
then normal volume after ``SuccessThreshold`` successes.
"""

from __future__ import annotations

from repro.simulation.kernel import Simulator

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState:
    """The three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the simulation clock.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures in CLOSED (or a single failure in
        HALF_OPEN) that trip the breaker.
    recovery_timeout:
        Virtual seconds the breaker stays OPEN before allowing trial
        calls (HALF_OPEN).
    success_threshold:
        Consecutive successes in HALF_OPEN required to close again.
    half_open_max_calls:
        In-flight trial calls permitted while HALF_OPEN; extra calls
        are rejected as if OPEN.
    """

    def __init__(
        self,
        sim: Simulator,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        success_threshold: int = 1,
        half_open_max_calls: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_timeout <= 0:
            raise ValueError(f"recovery_timeout must be > 0, got {recovery_timeout}")
        if success_threshold < 1:
            raise ValueError(f"success_threshold must be >= 1, got {success_threshold}")
        if half_open_max_calls < 1:
            raise ValueError(f"half_open_max_calls must be >= 1, got {half_open_max_calls}")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.success_threshold = success_threshold
        self.half_open_max_calls = half_open_max_calls

        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at: float | None = None
        self._half_open_in_flight = 0
        #: Transition log of (virtual_time, new_state), for tests.
        self.transitions: list[tuple[float, str]] = []

    @property
    def state(self) -> str:
        """Current state, accounting for recovery-timeout expiry."""
        self._maybe_enter_half_open()
        return self._state

    def allow_request(self) -> bool:
        """Gate one outbound call.

        CLOSED: always allowed.  OPEN: rejected.  HALF_OPEN: allowed
        while trial slots remain (each allowance takes a slot that
        :meth:`record_success` / :meth:`record_failure` releases).
        """
        self._maybe_enter_half_open()
        if self._state == BreakerState.CLOSED:
            return True
        if self._state == BreakerState.OPEN:
            return False
        if self._half_open_in_flight >= self.half_open_max_calls:
            return False
        self._half_open_in_flight += 1
        return True

    def record_success(self) -> None:
        """Report a successful call outcome."""
        if self._state == BreakerState.HALF_OPEN:
            self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
            self._consecutive_successes += 1
            if self._consecutive_successes >= self.success_threshold:
                self._transition(BreakerState.CLOSED)
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Report a failed call outcome."""
        if self._state == BreakerState.HALF_OPEN:
            self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
            self._trip()
            return
        if self._state == BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    # -- internals --------------------------------------------------------------

    def _trip(self) -> None:
        self._opened_at = self.sim.now
        self._transition(BreakerState.OPEN)

    def _maybe_enter_half_open(self) -> None:
        if self._state == BreakerState.OPEN and self._opened_at is not None:
            if self.sim.now - self._opened_at >= self.recovery_timeout:
                self._transition(BreakerState.HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        self._state = new_state
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        if new_state != BreakerState.HALF_OPEN:
            self._half_open_in_flight = 0
        self.transitions.append((self.sim.now, new_state))

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} fails={self._consecutive_failures}"
            f"/{self.failure_threshold}>"
        )
