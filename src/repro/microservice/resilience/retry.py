"""The bounded-retry resilience pattern (paper Section 2.1).

    "Bounded retries handle transient failures in the system ... The
    API calls are retried a bounded number of times and are usually
    accompanied with an exponential backoff strategy to avoid
    overloading the callee microservice."

``HasBoundedRetries(Src, Dst, MaxTries)`` in the assertion checker
verifies the *observable* consequence of this policy: after repeated
failures, Src sends at most MaxTries more requests to Dst.
"""

from __future__ import annotations

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Retries failed attempts with exponential backoff.

    Parameters
    ----------
    max_retries:
        Number of *additional* attempts after the first (so the total
        number of requests on the wire is ``max_retries + 1``).
    backoff_base:
        Sleep before the first retry, in virtual seconds.
    backoff_factor:
        Multiplier applied per retry (2.0 = classic exponential).
    max_backoff:
        Upper clamp on any single backoff sleep.
    jitter:
        Fraction of the backoff drawn uniformly at random and added,
        from the simulator's seeded RNG, to de-synchronize retry storms
        (0.0 disables jitter and keeps tests exactly deterministic).
    """

    def __init__(
        self,
        max_retries: int,
        backoff_base: float = 0.010,
        backoff_factor: float = 2.0,
        max_backoff: float = 10.0,
        jitter: float = 0.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 0 or max_backoff < 0:
            raise ValueError("backoff durations must be >= 0")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.max_backoff = max_backoff
        self.jitter = jitter

    @property
    def max_attempts(self) -> int:
        """Total attempts including the initial one."""
        return self.max_retries + 1

    def backoff(self, retry_index: int, rng=None) -> float:
        """Sleep duration before retry number ``retry_index`` (0-based).

        ``rng`` supplies jitter draws; pass the simulator's named
        stream so runs stay reproducible.
        """
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        delay = min(self.max_backoff, self.backoff_base * (self.backoff_factor**retry_index))
        if self.jitter > 0.0 and rng is not None:
            delay += delay * self.jitter * rng.random()
        return delay

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, base={self.backoff_base},"
            f" factor={self.backoff_factor})"
        )
