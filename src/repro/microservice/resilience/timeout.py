"""The timeout resilience pattern (paper Section 2.1).

    "Timeouts ensure that an API call to a microservice completes in
    bounded time, to maintain responsiveness and release resources
    associated with the API call in a timely fashion."

The policy object is deliberately tiny — the mechanism lives in the
HTTP client's deadline support — because what matters for the
reproduction is its *presence or absence*: Figure 5 of the paper shows
WordPress response times offset by exactly the injected delay when the
callee's client has no timeout configured.
"""

from __future__ import annotations

__all__ = ["TimeoutPolicy"]


class TimeoutPolicy:
    """Bounds each API call attempt to ``timeout`` virtual seconds.

    Applied per *attempt*: a retry policy wrapping this one restarts
    the budget for every try, matching common client libraries
    (requests, Finagle, Hystrix).
    """

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"TimeoutPolicy({self.timeout!r})"
