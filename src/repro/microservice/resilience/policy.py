"""Composition of resilience patterns into a per-dependency policy.

A :class:`ResiliencePolicy` bundles the four patterns of paper Section
2.1 — any subset may be present, and the *absence* of each one is a
bug class Gremlin's pattern checks are designed to expose:

* no timeout      -> Fig 5's delay-offset response times
* no bounded retry-> unbounded hammering of a degraded callee
* no breaker      -> Fig 6's fully-delayed request train, cascading load
* no bulkhead     -> caller resource exhaustion from one slow callee

``fallback`` is the "cached (or default) response" of the breaker
description: a callable producing an :class:`HttpResponse` when the
dependency is unavailable (breaker open, bulkhead full, or attempts
exhausted).  Without a fallback those conditions surface as exceptions
to the service handler.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.resilience.bulkhead import Bulkhead
from repro.microservice.resilience.circuit_breaker import CircuitBreaker
from repro.microservice.resilience.retry import RetryPolicy
from repro.microservice.resilience.timeout import TimeoutPolicy
from repro.simulation.kernel import Simulator

__all__ = ["ResiliencePolicy", "PolicySpec"]

#: A fallback takes the failed request and returns a substitute response.
Fallback = _t.Callable[[HttpRequest], HttpResponse]


@dataclasses.dataclass
class PolicySpec:
    """Declarative description of a policy, used in service definitions.

    Service definitions are built before the simulator exists, so the
    spec holds plain parameters; :meth:`build` instantiates the
    stateful pattern objects against a concrete simulator.  A spec with
    every field ``None`` describes the *naive* client the case studies
    (ElasticPress, pre-fix Unirest users) exhibit.
    """

    timeout: _t.Optional[float] = None
    max_retries: _t.Optional[int] = None
    retry_backoff_base: float = 0.010
    retry_backoff_factor: float = 2.0
    breaker_failure_threshold: _t.Optional[int] = None
    breaker_recovery_timeout: float = 30.0
    breaker_success_threshold: int = 1
    bulkhead_max_concurrent: _t.Optional[int] = None
    fallback: _t.Optional[Fallback] = None

    @classmethod
    def naive(cls) -> "PolicySpec":
        """No patterns at all — the anti-pattern under test in Fig 5/6."""
        return cls()

    @classmethod
    def hardened(
        cls,
        timeout: float = 1.0,
        max_retries: int = 3,
        breaker_failure_threshold: int = 5,
        breaker_recovery_timeout: float = 30.0,
        bulkhead_max_concurrent: int = 10,
        fallback: _t.Optional[Fallback] = None,
    ) -> "PolicySpec":
        """All four patterns enabled with sane defaults."""
        return cls(
            timeout=timeout,
            max_retries=max_retries,
            breaker_failure_threshold=breaker_failure_threshold,
            breaker_recovery_timeout=breaker_recovery_timeout,
            bulkhead_max_concurrent=bulkhead_max_concurrent,
            fallback=fallback,
        )

    def build(self, sim: Simulator, name: str = "policy") -> "ResiliencePolicy":
        """Instantiate the stateful policy for a concrete simulator."""
        timeout = TimeoutPolicy(self.timeout) if self.timeout is not None else None
        retry = (
            RetryPolicy(
                self.max_retries,
                backoff_base=self.retry_backoff_base,
                backoff_factor=self.retry_backoff_factor,
            )
            if self.max_retries is not None
            else None
        )
        breaker = (
            CircuitBreaker(
                sim,
                failure_threshold=self.breaker_failure_threshold,
                recovery_timeout=self.breaker_recovery_timeout,
                success_threshold=self.breaker_success_threshold,
            )
            if self.breaker_failure_threshold is not None
            else None
        )
        bulkhead = (
            Bulkhead(sim, self.bulkhead_max_concurrent, name=f"{name}/bulkhead")
            if self.bulkhead_max_concurrent is not None
            else None
        )
        return ResiliencePolicy(
            timeout=timeout,
            retry=retry,
            breaker=breaker,
            bulkhead=bulkhead,
            fallback=self.fallback,
        )


@dataclasses.dataclass
class ResiliencePolicy:
    """The stateful, per-(caller-instance, dependency) policy bundle."""

    timeout: _t.Optional[TimeoutPolicy] = None
    retry: _t.Optional[RetryPolicy] = None
    breaker: _t.Optional[CircuitBreaker] = None
    bulkhead: _t.Optional[Bulkhead] = None
    fallback: _t.Optional[Fallback] = None

    @property
    def attempt_timeout(self) -> _t.Optional[float]:
        """Per-attempt deadline in virtual seconds, or None (unbounded)."""
        return self.timeout.timeout if self.timeout is not None else None

    @property
    def max_attempts(self) -> int:
        """Total request attempts the policy allows per logical call."""
        return self.retry.max_attempts if self.retry is not None else 1

    def describe(self) -> str:
        """Compact human-readable summary of enabled patterns."""
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout.timeout}")
        if self.retry is not None:
            parts.append(f"retries={self.retry.max_retries}")
        if self.breaker is not None:
            parts.append(f"breaker={self.breaker.failure_threshold}")
        if self.bulkhead is not None:
            parts.append(f"bulkhead={self.bulkhead.max_concurrent}")
        if self.fallback is not None:
            parts.append("fallback")
        return "+".join(parts) if parts else "naive"
