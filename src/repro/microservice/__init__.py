"""Microservice runtime substrate.

Service definitions, running instances, per-dependency resilient
clients, the logical application graph, and the deployment builder
that wires everything (including Gremlin agent sidecars) onto a
simulated network.
"""

from repro.microservice.app import Application, Deployment, TrafficSource
from repro.microservice.clients import CallStats, DependencyClient
from repro.microservice.graph import ApplicationGraph
from repro.microservice.handlers import (
    chain_handler,
    fanout_handler,
    proxy_handler,
    static_handler,
)
from repro.microservice.instance import ServiceInstance
from repro.microservice.resilience import (
    BreakerState,
    Bulkhead,
    CircuitBreaker,
    PolicySpec,
    ResiliencePolicy,
    RetryPolicy,
    TimeoutPolicy,
)
from repro.microservice.service import (
    DEFAULT_SERVICE_PORT,
    ServiceContext,
    ServiceDefinition,
    ServiceHandler,
)

__all__ = [
    "Application",
    "ApplicationGraph",
    "BreakerState",
    "Bulkhead",
    "CallStats",
    "CircuitBreaker",
    "DEFAULT_SERVICE_PORT",
    "DependencyClient",
    "Deployment",
    "PolicySpec",
    "ResiliencePolicy",
    "RetryPolicy",
    "ServiceContext",
    "ServiceDefinition",
    "ServiceHandler",
    "ServiceInstance",
    "TimeoutPolicy",
    "TrafficSource",
    "chain_handler",
    "fanout_handler",
    "proxy_handler",
    "static_handler",
]
