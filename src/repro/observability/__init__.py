"""Observability: span traces, metrics, exporters, fault attribution.

What the paper's operators got from Elasticsearch dashboards, this
package provides in-process, on top of the agents' observation logs:

* :mod:`~repro.observability.spans` — the span model (one proxied
  request/reply exchange) assembled from observation records;
* :mod:`~repro.observability.trace` — per-request causal trees with
  critical-path extraction and per-edge latency breakdowns;
* :mod:`~repro.observability.metrics` — a registry of lock-free
  per-thread counters, gauges, and mergeable fixed-bucket histograms;
* :mod:`~repro.observability.exporters` — Prometheus-text and JSON
  renderings of metrics snapshots;
* :mod:`~repro.observability.attribution` — joining reconstructed
  traces against the active rule set so every failure names the
  injected fault that caused it and the path it propagated along;
* :mod:`~repro.observability.cascade` — campaign-level analytics on
  top of all of the above: dependency-graph discovery, blast-radius
  scoring, root-cause ranking, graph what-if simulation, and the
  operator resilience report.
"""

from repro.observability.attribution import (
    FaultAttribution,
    attribute_run,
    attribute_trace,
)
from repro.observability.cascade import (
    BlastRadius,
    DependencyGraph,
    ResilienceReport,
    blast_radius,
    build_explore_report,
    build_report,
    discover_graph,
    graph_from_campaign,
    rank_root_causes,
    simulate_fault,
)
from repro.observability.exporters import to_json, to_prometheus
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
    merge_histogram_data,
    merge_snapshots,
)
from repro.observability.spans import Span, assemble_spans
from repro.observability.trace import (
    Trace,
    TraceNode,
    reconstruct,
    reconstruct_from_records,
    trace_shape_digest,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "BlastRadius",
    "Counter",
    "DependencyGraph",
    "FaultAttribution",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResilienceReport",
    "Span",
    "Trace",
    "TraceNode",
    "assemble_spans",
    "attribute_run",
    "attribute_trace",
    "blast_radius",
    "build_explore_report",
    "build_report",
    "discover_graph",
    "format_series",
    "graph_from_campaign",
    "merge_histogram_data",
    "merge_snapshots",
    "rank_root_causes",
    "reconstruct",
    "reconstruct_from_records",
    "simulate_fault",
    "to_json",
    "trace_shape_digest",
    "to_prometheus",
]
