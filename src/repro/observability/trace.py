"""Per-request causal trees reconstructed from span records.

The paper's assertions reason about flat request/reply lists per edge;
this module recovers the *structure* between them: which downstream
calls a request caused, in what order, and which path through the tree
determined the end-to-end latency.  Reconstruction needs only what the
agents already log — the span ID each sidecar mints and the parent
span ID each service propagates — so it works on any stored run,
including campaign dumps re-loaded later.

Lookup uses the store's exact request-ID index (the ``rid`` driver):
pulling one request's records is a point lookup, not a scan, which is
what makes ``repro trace`` interactive even on large runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as _t

from repro.errors import TraceError
from repro.logstore.query import Query
from repro.logstore.record import ObservationRecord
from repro.observability.spans import Span, assemble_spans

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.logstore.store import EventStore

__all__ = [
    "Trace",
    "TraceNode",
    "reconstruct",
    "reconstruct_from_records",
    "trace_shape_digest",
]


@dataclasses.dataclass
class TraceNode:
    """One span plus the calls it caused, start-ordered."""

    span: Span
    children: _t.List["TraceNode"] = dataclasses.field(default_factory=list)

    def walk(self) -> _t.Iterator[_t.Tuple["TraceNode", int]]:
        """Depth-first (node, depth) traversal."""
        stack: _t.List[_t.Tuple["TraceNode", int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in reversed(node.children):
                stack.append((child, depth + 1))


class Trace:
    """The causal tree of one request's proxied calls.

    ``roots`` are spans with no recorded parent — normally the single
    entry edge, but client-side retries at the entry produce sibling
    roots (one per attempt).  Spans whose parent ID is missing from
    the record set ("orphans", e.g. the parent was lost in shipping)
    are kept as extra roots and called out in ``diagnostics`` rather
    than dropped: partial visibility, loudly labelled.
    """

    def __init__(
        self,
        request_id: str,
        spans: _t.List[Span],
        diagnostics: _t.List[str],
    ) -> None:
        self.request_id = request_id
        self.spans = spans
        self.diagnostics = list(diagnostics)
        self.nodes: _t.Dict[str, TraceNode] = {
            span.span_id: TraceNode(span) for span in spans
        }
        self.roots: _t.List[TraceNode] = []
        self.orphans: _t.List[Span] = []
        for span in spans:
            node = self.nodes[span.span_id]
            if span.parent_span is None:
                self.roots.append(node)
            elif span.parent_span in self.nodes:
                self.nodes[span.parent_span].children.append(node)
            else:
                self.orphans.append(span)
                self.roots.append(node)
                self.diagnostics.append(
                    f"span {span.span_id} ({span.src} -> {span.dst}) references"
                    f" unknown parent {span.parent_span} — treating as a root"
                    " (parent record lost or trace truncated)"
                )

    # -- aggregate views -----------------------------------------------------

    @property
    def span_count(self) -> int:
        """Number of spans in the tree."""
        return len(self.spans)

    @property
    def start(self) -> _t.Optional[float]:
        """Earliest span start, or None for an empty trace."""
        return min((s.start for s in self.spans), default=None)

    @property
    def end(self) -> _t.Optional[float]:
        """Latest span end among completed spans, or None."""
        return max((s.end for s in self.spans if s.end is not None), default=None)

    @property
    def duration(self) -> _t.Optional[float]:
        """End-to-end wall span of the trace, when computable."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    @property
    def failed(self) -> bool:
        """True if any root span ended in an error outcome."""
        return any(not root.span.ok for root in self.roots)

    def faulted_spans(self) -> _t.List[Span]:
        """Spans where a Gremlin rule fired, start-ordered."""
        return [span for span in self.spans if span.fault_applied]

    def path_to_root(self, span_id: str) -> _t.List[Span]:
        """The span chain from ``span_id`` up to its root, leaf first."""
        path: _t.List[Span] = []
        seen: _t.Set[str] = set()
        current: _t.Optional[str] = span_id
        while current is not None and current in self.nodes and current not in seen:
            seen.add(current)
            span = self.nodes[current].span
            path.append(span)
            current = span.parent_span
        return path

    def critical_path(self) -> _t.List[Span]:
        """The span chain that determined the trace's completion time.

        Greedy descent from the latest-finishing root: at each node,
        follow the child whose ``end`` is latest (incomplete children
        count as still running, i.e. latest of all).  For synchronous
        call trees this is the classic latency-critical path; per-edge
        time on it is where optimization or fault impact concentrates.
        """
        if not self.roots:
            return []

        def end_key(node: TraceNode) -> float:
            return float("inf") if node.span.end is None else node.span.end

        path: _t.List[Span] = []
        node = max(self.roots, key=end_key)
        while True:
            path.append(node.span)
            if not node.children:
                return path
            node = max(node.children, key=end_key)

    def edge_latency(self) -> _t.Dict[_t.Tuple[str, str], dict]:
        """Per-edge latency breakdown across the whole trace.

        Maps (src, dst) to count/total/max latency plus how much of the
        total was Gremlin-injected delay — separating "the callee is
        slow" from "we made the callee slow".
        """
        edges: _t.Dict[_t.Tuple[str, str], dict] = {}
        for span in self.spans:
            bucket = edges.setdefault(
                span.edge,
                {"calls": 0, "total": 0.0, "max": 0.0, "injected": 0.0, "incomplete": 0},
            )
            bucket["calls"] += 1
            if span.latency is None:
                bucket["incomplete"] += 1
            else:
                bucket["total"] += span.latency
                bucket["max"] = max(bucket["max"], span.latency)
            bucket["injected"] += span.injected_delay
        return edges

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form: spans, tree shape, diagnostics."""
        return {
            "request_id": self.request_id,
            "span_count": self.span_count,
            "duration": self.duration,
            "failed": self.failed,
            "spans": [span.to_dict() for span in self.spans],
            "roots": [root.span.span_id for root in self.roots],
            "critical_path": [span.span_id for span in self.critical_path()],
            "diagnostics": list(self.diagnostics),
        }

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """ASCII causal tree with faults and the critical path annotated."""
        lines: _t.List[str] = []
        duration = f"{self.duration:.4f}s" if self.duration is not None else "incomplete"
        lines.append(
            f"trace {self.request_id}: {self.span_count} span(s),"
            f" {len(self.roots)} root(s), duration {duration}"
        )
        critical = {span.span_id for span in self.critical_path()}
        for root in sorted(self.roots, key=lambda n: (n.span.start, n.span.span_id)):
            self._render_node(root, "", True, critical, lines)
        if self.diagnostics:
            lines.append("diagnostics:")
            for message in self.diagnostics:
                lines.append(f"  ! {message}")
        return "\n".join(lines)

    def _render_node(
        self,
        node: TraceNode,
        indent: str,
        last: bool,
        critical: _t.Set[str],
        lines: _t.List[str],
    ) -> None:
        branch = "`-" if last else "|-"
        marks = ""
        if node.span.span_id in critical:
            marks += "  *critical*"
        if not node.span.ok:
            marks += "  FAILED" if node.span.complete else "  INCOMPLETE"
        lines.append(f"{indent}{branch} {node.span.describe()}{marks}")
        child_indent = indent + ("   " if last else "|  ")
        children = sorted(node.children, key=lambda n: (n.span.start, n.span.span_id))
        for index, child in enumerate(children):
            self._render_node(
                child, child_indent, index == len(children) - 1, critical, lines
            )


def _shape_form(node: TraceNode) -> _t.List[_t.Any]:
    """Canonical nested form of one subtree, independent of span IDs.

    Each node contributes what the call *was* and how it *ended* —
    (src, dst, status, error?, fault applied) — never the identifiers
    minted along the way (span IDs, timestamps, instance names), so two
    runs of the same behaviour canonicalize identically even when IDs
    are renumbered.  Children are ordered by their own canonical form,
    making the result insensitive to sibling enumeration order too.
    """
    span = node.span
    children = sorted(
        (_shape_form(child) for child in node.children),
        key=lambda form: json.dumps(form, separators=(",", ":")),
    )
    return [
        span.src,
        span.dst,
        span.status,
        bool(span.error),
        span.fault_applied,
        children,
    ]


def trace_shape_digest(trace: Trace) -> str:
    """Stable hash of a causal tree's *shape*.

    Two traces digest equally iff their trees have the same structure
    of (src, dst, status, errored?, fault-applied) nodes — regardless
    of span-ID numbering, record arrival order, scheduler lane, fleet
    backend, or wall-clock jitter.  The exploration layer uses this as
    its coverage signal ("new shape ⇒ interesting input") and the fuzz
    metamorphic battery uses it to compare executions whose absolute
    digests legitimately differ (e.g. after rule-ID reassignment).
    """
    forms = sorted(
        (_shape_form(root) for root in trace.roots),
        key=lambda form: json.dumps(form, separators=(",", ":")),
    )
    payload = json.dumps(forms, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def reconstruct_from_records(
    request_id: str, records: _t.Iterable[ObservationRecord]
) -> Trace:
    """Build a :class:`Trace` from already-fetched records."""
    spans, diagnostics = assemble_spans(records)
    return Trace(request_id, spans, diagnostics)


def reconstruct(store: "EventStore", request_id: str) -> Trace:
    """Reconstruct the causal tree of ``request_id`` from the store.

    The exact-ID query hits the store's request-ID posting list, so
    cost is proportional to the one request's records.  Raises
    :class:`TraceError` when the store holds nothing for the ID — an
    unknown ID is an operator typo worth failing loudly on, not an
    empty tree.
    """
    records = store.search(Query(id_pattern=request_id))
    if not records:
        raise TraceError(
            f"no records for request ID {request_id!r} — wrong ID,"
            " cleared store, or the run predates span tracing"
        )
    return reconstruct_from_records(request_id, records)
