"""Blast-radius scoring: who degrades when a service is faulted.

A campaign already records, per failing recipe, the
:class:`~repro.observability.attribution.FaultAttribution` joins —
which rule fired on which edge and the outcome of every hop on the
propagation path up to the trace root.  This module folds those joins
across a whole campaign into per-service blast radii: for each faulted
service, the set of other services that observably degraded while its
rules were firing, weighted by how often.

The computation reads *only* edge names and hop outcomes — never span
IDs — so blast scores are invariant under span-ID renumbering (the
same invariance :func:`~repro.observability.trace.trace_shape_digest`
guarantees for shapes; a hypothesis property pins it).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.observability.cascade.graph import hop_degraded, parse_propagation_hop

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.results import CampaignResult

__all__ = ["BlastRadius", "blast_from_attributions", "blast_radius"]


@dataclasses.dataclass
class BlastRadius:
    """Observed blast of faulting one service, across a campaign."""

    #: The service whose dependency edges carried the fired rules.
    service: str
    #: Failing recipe executions in which its rules fired.
    runs: int = 0
    #: Total attributions folded in.
    attributions: int = 0
    #: Degraded service -> number of attributions showing it degraded.
    #: A service counts as degraded when it *observed* a failing call
    #: (it is the src of a failing propagation hop) — the synthetic
    #: traffic source appearing here means the failure was user-visible.
    impacted: _t.Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Attributions whose root outcome was itself a failure — the
    #: fault escaped every resilience pattern on the way up.
    reached_entry: int = 0

    @property
    def impacted_services(self) -> _t.List[str]:
        """Degraded services, most-often-hit first (name-stable ties)."""
        return [
            service
            for service, _ in sorted(
                self.impacted.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    @property
    def score(self) -> float:
        """Headline number: degraded-set breadth scaled by how often
        the fault escaped to the entry edge.  A service whose faults
        degrade many others *and* routinely reach the user scores
        highest; one whose faults are always absorbed scores zero."""
        if not self.attributions:
            return 0.0
        return len(self.impacted) * (self.reached_entry / self.attributions)

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "runs": self.runs,
            "attributions": self.attributions,
            "impacted": dict(sorted(self.impacted.items())),
            "impacted_services": self.impacted_services,
            "reached_entry": self.reached_entry,
            "score": round(self.score, 6),
        }


def _fold(blast: BlastRadius, attribution: _t.Mapping) -> None:
    blast.attributions += 1
    outcome = attribution.get("outcome", "")
    if hop_degraded(outcome):
        blast.reached_entry += 1
    for hop in attribution.get("propagation_path", ()):
        src, _dst, hop_outcome = parse_propagation_hop(hop)
        if hop_degraded(hop_outcome):
            blast.impacted[src] = blast.impacted.get(src, 0) + 1


def blast_from_attributions(
    service: str, attributions: _t.Iterable[_t.Mapping]
) -> BlastRadius:
    """Blast radius of one service from its serialized attributions."""
    blast = BlastRadius(service=service)
    count = 0
    for attribution in attributions:
        _fold(blast, attribution)
        count += 1
    blast.runs = 1 if count else 0
    return blast


def blast_radius(result: "CampaignResult") -> _t.Dict[str, BlastRadius]:
    """Per-service blast radii across a whole campaign.

    Outcomes are grouped by the service their recipe faulted (the
    plan's ground truth of where the rules pointed); each failing
    outcome's attributions then vote on who degraded.  Services whose
    recipes all passed produce no entry — no observed blast.
    """
    radii: _t.Dict[str, BlastRadius] = {}
    for outcome in result.outcomes:
        if not outcome.attributions:
            continue
        blast = radii.get(outcome.service)
        if blast is None:
            blast = radii[outcome.service] = BlastRadius(service=outcome.service)
        blast.runs += 1
        for attribution in outcome.attributions:
            _fold(blast, attribution)
    return dict(sorted(radii.items()))
