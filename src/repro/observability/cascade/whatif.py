"""Graph-level what-if simulation: cheap cascade triage before real runs.

Full-fidelity fault executions are the expensive resource; the
discovered :class:`~repro.observability.cascade.graph.DependencyGraph`
is cheap.  Following the model-discovery-plus-graph-simulation idea,
this module propagates a *hypothetical* fault over the graph with
simple degradation/retry-amplification semantics and produces a
predicted blast set per candidate — enough signal to decide which
full-fidelity experiments to run first.

The model (deliberately simple, deliberately worst-case):

* Faulting edge ``src -> dst`` degrades ``src`` and, absent evidence
  of absorption, every transitive caller of ``src`` — the fault-free
  discovery run cannot prove a timeout/fallback will catch it, so the
  model assumes propagation.  The predicted blast set is that upstream
  cone; its size is the impact term.
* A **delay** of interval *I* inflates the entry latency by *I*: a
  stall is renewed on every call, cannot be outrun by retries, and
  consumes caller capacity while it lasts.  Damage is *I* seconds
  (capped), which against millisecond-scale discovered baselines
  dominates any error-class damage.
* An **abort/reset** does damage through two channels: user-visible
  fast failures (base damage 1 per request) and retry amplification —
  callers that retry a failing edge multiply call volume on it, so the
  base damage is scaled by the retry multiplier
  (:data:`RETRY_AMPLIFICATION` when the graph shows no observed retry
  rate to use instead).  Under the default multiplier an abort's
  damage ties a canonical sustained stall — deliberately: which fault
  class trips a latent bug (a stall for a missing timeout, a fast
  error for an unbounded retry or stuck breaker) is exactly what the
  fault-free discovery run cannot reveal, so at equal blast the model
  alternates classes instead of exhausting one.

Candidate ordering (:func:`order_candidates`) scores every coordinate
as ``predicted blast size + damage`` and sorts once, statically — no
online feedback — which makes the schedule a pure function of the
discovery run.  Prediction quality is measured against the seeded-bug
apps' ground truth in ``benchmarks/test_bench_report.py``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import AnalysisError
from repro.observability.cascade.graph import DependencyGraph

__all__ = [
    "CascadePrediction",
    "simulate_fault",
    "predict_service_blast",
    "order_candidates",
    "order_plan",
]

#: Cap on the latency-damage term so one huge Delay interval cannot
#: drown the blast-size term entirely.
DELAY_DAMAGE_CAP = 10.0

#: Base damage of an application-level abort: every request fails
#: fast.  Scaled by the edge's retry multiplier at simulation time —
#: the second damage channel of an error-class fault.
ABORT_DAMAGE = 1.0

#: A TCP-level reset is discounted well below an abort — not because
#: its impact is lower, but because it is *redundant* with one: both
#: drive the caller's error-handling path, so once an abort is ranked
#: on an edge a reset there carries little new information.  The
#: discount (one full blast level under the default retry multiplier)
#: defers resets behind neighboring edges' untried fault classes.
RESET_DAMAGE = 0.5

#: Assumed call multiplication on a failing edge when the discovery
#: run observed no retries (fault-free runs never do): one retry per
#: failure across a typical default policy.
RETRY_AMPLIFICATION = 2.0


@dataclasses.dataclass(frozen=True)
class CascadePrediction:
    """Predicted consequences of one hypothetical fault."""

    src: str
    dst: str
    fault: str
    #: Delay interval (seconds); 0 for error-class faults.
    interval: float
    #: Predicted blast set: services degraded if nothing absorbs the
    #: fault — the injection's source and its transitive callers.
    impacted: _t.Tuple[str, ...]
    #: Predicted entry-latency inflation (seconds).
    entry_latency_inflation: float
    #: Predicted fraction of entry requests failing.
    entry_error_fraction: float
    #: Predicted call volume on the faulted edge, after amplification.
    amplified_calls: float
    #: Damage term (latency/error, pre-blast-scaling).
    damage: float
    #: Triage score: blast size + damage.  Higher = try first.
    score: float

    def to_dict(self) -> dict:
        return {
            "edge": f"{self.src} -> {self.dst}",
            "fault": self.fault,
            "interval": self.interval,
            "impacted": list(self.impacted),
            "entry_latency_inflation": self.entry_latency_inflation,
            "entry_error_fraction": self.entry_error_fraction,
            "amplified_calls": round(self.amplified_calls, 3),
            "damage": round(self.damage, 6),
            "score": round(self.score, 6),
        }


def _edge_calls(graph: DependencyGraph, src: str, dst: str) -> float:
    stats = graph.edges.get((src, dst))
    return float(stats.calls) if stats is not None else 0.0


def _retry_multiplier(graph: DependencyGraph, src: str, dst: str) -> float:
    """Observed (1 + retries/call) on the edge, or the model default."""
    stats = graph.edges.get((src, dst))
    if stats is not None and stats.calls and stats.retries:
        return 1.0 + stats.retries / stats.calls
    return RETRY_AMPLIFICATION


def simulate_fault(
    graph: DependencyGraph,
    src: str,
    dst: str,
    fault: str,
    *,
    interval: float = 0.0,
) -> CascadePrediction:
    """Propagate one hypothetical fault on ``src -> dst`` over the graph.

    ``fault`` is a primitive name (``abort``/``reset``/``delay``/
    ``delay_short``); delay-class primitives take ``interval`` seconds.
    """
    impacted = tuple(sorted(graph.ancestors(src) | {src}))
    calls = _edge_calls(graph, src, dst)
    if fault in ("delay", "delay_short"):
        if interval < 0:
            raise AnalysisError(f"delay interval must be >= 0, got {interval}")
        damage = min(interval, DELAY_DAMAGE_CAP)
        return CascadePrediction(
            src=src,
            dst=dst,
            fault=fault,
            interval=interval,
            impacted=impacted,
            entry_latency_inflation=interval,
            entry_error_fraction=0.0,
            amplified_calls=calls,
            damage=damage,
            score=len(impacted) + damage,
        )
    multiplier = _retry_multiplier(graph, src, dst)
    damage = (RESET_DAMAGE if fault == "reset" else ABORT_DAMAGE) * multiplier
    amplified = calls * multiplier
    return CascadePrediction(
        src=src,
        dst=dst,
        fault=fault,
        interval=0.0,
        impacted=impacted,
        entry_latency_inflation=0.0,
        entry_error_fraction=1.0,
        amplified_calls=amplified,
        damage=damage,
        score=len(impacted) + damage,
    )


def predict_service_blast(
    graph: DependencyGraph, service: str
) -> _t.Dict[str, _t.Any]:
    """Predicted blast of ``service`` failing outright (for reports).

    The worst incoming-edge prediction: every caller edge aborts, the
    upstream cone degrades, call volume on the incoming edges amplifies
    by the modeled retry factor.
    """
    impacted = tuple(sorted(graph.ancestors(service)))
    amplified = sum(
        _edge_calls(graph, caller, service) * _retry_multiplier(graph, caller, service)
        for caller in graph.callers_of(service)
    )
    return {
        "service": service,
        "impacted": list(impacted),
        "blast_size": len(impacted),
        "amplified_calls": round(amplified, 3),
    }


def _subtree_weight(graph: DependencyGraph, service: str) -> int:
    return len(graph.descendants(service)) + 1


def order_candidates(
    coordinates: _t.Sequence,
    graph: DependencyGraph,
    *,
    intervals: _t.Optional[_t.Mapping[str, float]] = None,
    requests: int = 1,
) -> _t.List:
    """Statically order exploration coordinates by predicted damage.

    ``coordinates`` are :class:`~repro.explore.coords.Coordinate`-shaped
    objects (``mode``/``src``/``dst``/``fault`` attributes); the return
    is the same objects, most-damaging prediction first.  ``intervals``
    maps delay-class primitive names to their concrete seconds (from
    the app manifest); ``requests`` is the workload size — a
    single-invocation fault is transient, so its predicted damage is
    one request's share of the sweep's.

    Ties break deterministically: larger damage term first (a
    sustained stall beats a fast error at equal blast), then the edge
    with the larger downstream subtree (more structure underneath to
    disturb), then the caller-supplied enumeration order.
    """
    intervals = dict(intervals or {})
    scored: _t.List[_t.Tuple[float, float, int, int, _t.Any]] = []
    for index, coordinate in enumerate(coordinates):
        prediction = simulate_fault(
            graph,
            coordinate.src,
            coordinate.dst,
            coordinate.fault,
            interval=intervals.get(coordinate.fault, 0.0),
        )
        score = prediction.score
        if getattr(coordinate, "mode", "sweep") == "single" and requests > 1:
            score /= requests
        scored.append(
            (
                score,
                prediction.damage,
                _subtree_weight(graph, coordinate.dst),
                index,
                coordinate,
            )
        )
    scored.sort(key=lambda item: (-item[0], -item[1], -item[2], item[3]))
    return [item[4] for item in scored]


def order_plan(plan_entries: _t.Sequence, graph: DependencyGraph) -> _t.List:
    """Reorder campaign plan entries by predicted service blast.

    ``plan_entries`` are
    :class:`~repro.campaign.plan.PlannedRecipe`-shaped objects exposing
    ``service``; entries faulting services with the larger predicted
    blast (upstream cone × subtree weight) run first, original order
    breaking ties.  Useful under fail-fast or tight time budgets: the
    recipes most likely to surface a cascading failure execute before
    the long tail.
    """
    def key(item: _t.Tuple[int, _t.Any]) -> tuple:
        index, entry = item
        service = getattr(entry, "service", "*")
        if service == "*" or service not in set(graph.services()):
            return (0, 0, index)
        blast = len(graph.ancestors(service))
        return (-blast, -_subtree_weight(graph, service), index)

    return [entry for _, entry in sorted(enumerate(plan_entries), key=key)]
