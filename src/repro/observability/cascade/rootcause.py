"""Root-cause ranking: which (service, fault-pattern) explains a failure.

A campaign's failed assertion names *what* broke ("HasTimeouts(catalog,
1s) failed"); the attributions name *candidates* for why.  This module
ranks them.  For every conclusively failed check across a campaign,
each (culprit service, fault pattern) pair observed in the failing
outcomes' attributions is scored on three signals:

* **attribution frequency** — how many failing executions of that
  check carried this culprit (a fault that explains every failure
  outranks one seen once);
* **critical-path membership** — the fraction of its attributions
  whose faulted span sat on the failing trace's latency-critical path
  (recorded by the attribution layer; absent on pre-upgrade dumps and
  then scored neutrally);
* **trace-shape coverage** — how many *distinct* propagation paths the
  culprit produced; a fault provoking many failure shapes is doing
  structural damage, not tripping one corner.

Scores are deterministic (weighted sum, stable tie-break on the edge
and fault strings), so the same campaign dump always ranks the same.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.results import CampaignResult

__all__ = ["RootCauseCandidate", "rank_root_causes"]

#: Score weights: frequency dominates, shape diversity refines,
#: critical-path membership breaks near-ties.
WEIGHT_FREQUENCY = 10.0
WEIGHT_SHAPES = 2.0
WEIGHT_CRITICAL = 1.0


@dataclasses.dataclass
class RootCauseCandidate:
    """One (service, fault-pattern) candidate for one failed check."""

    check: str
    #: The dependency whose faulting explains the failure — the dst of
    #: the edge the rule fired on.
    service: str
    #: Fault pattern as the rule described itself, e.g. ``"abort(503)"``.
    fault: str
    #: The injected edge, ``"src -> dst"``.
    edge: str
    #: Failing executions (recipes) of this check carrying the culprit.
    frequency: int = 0
    #: Total attributions folded in.
    attributions: int = 0
    #: Attributions whose faulted span was on the trace's critical path.
    on_critical_path: int = 0
    #: Attributions carrying critical-path evidence at all (older dumps
    #: predate the field; they score this signal neutrally).
    critical_path_known: int = 0
    #: Distinct propagation paths observed — the shape-coverage signal.
    distinct_paths: int = 0
    #: Longest propagation path seen (hops from injection to root).
    max_reach: int = 0
    _paths: _t.Set[tuple] = dataclasses.field(
        default_factory=set, repr=False, compare=False
    )

    @property
    def critical_fraction(self) -> float:
        """Critical-path membership rate; 0.5 (neutral) when unknown."""
        if not self.critical_path_known:
            return 0.5
        return self.on_critical_path / self.critical_path_known

    @property
    def score(self) -> float:
        return (
            WEIGHT_FREQUENCY * self.frequency
            + WEIGHT_SHAPES * self.distinct_paths
            + WEIGHT_CRITICAL * self.critical_fraction
        )

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "service": self.service,
            "fault": self.fault,
            "edge": self.edge,
            "frequency": self.frequency,
            "attributions": self.attributions,
            "distinct_paths": self.distinct_paths,
            "max_reach": self.max_reach,
            "critical_fraction": round(self.critical_fraction, 6),
            "score": round(self.score, 6),
        }


def rank_root_causes(
    result: "CampaignResult",
) -> _t.Dict[str, _t.List[RootCauseCandidate]]:
    """Ranked culprit candidates for every conclusively failed check.

    Returns ``{check name: [candidates, best first]}`` — checks sorted
    by name, candidates by descending score with a stable (edge, fault)
    tie-break.  Checks that never failed conclusively do not appear.
    """
    candidates: _t.Dict[_t.Tuple[str, str, str], RootCauseCandidate] = {}
    for outcome in result.outcomes:
        failed_checks = [
            check.name
            for check in outcome.checks
            if not check.passed and not check.inconclusive
        ]
        if not failed_checks or not outcome.attributions:
            continue
        seen_this_outcome: _t.Set[_t.Tuple[str, str, str]] = set()
        for doc in outcome.attributions:
            edge = doc.get("edge", "?")
            fault = doc.get("fault", "?")
            culprit = edge.split(" -> ")[-1]
            path = tuple(doc.get("propagation_path", ()))
            on_critical = doc.get("on_critical_path")
            for check_name in failed_checks:
                key = (check_name, edge, fault)
                candidate = candidates.get(key)
                if candidate is None:
                    candidate = candidates[key] = RootCauseCandidate(
                        check=check_name, service=culprit, fault=fault, edge=edge
                    )
                if key not in seen_this_outcome:
                    seen_this_outcome.add(key)
                    candidate.frequency += 1
                candidate.attributions += 1
                candidate.max_reach = max(candidate.max_reach, len(path))
                candidate._paths.add(path)
                if on_critical is not None:
                    candidate.critical_path_known += 1
                    if on_critical:
                        candidate.on_critical_path += 1
    ranked: _t.Dict[str, _t.List[RootCauseCandidate]] = {}
    for candidate in candidates.values():
        candidate.distinct_paths = len(candidate._paths)
        ranked.setdefault(candidate.check, []).append(candidate)
    for check_name, check_candidates in ranked.items():
        check_candidates.sort(key=lambda c: (-c.score, c.edge, c.fault))
    return dict(sorted(ranked.items()))
