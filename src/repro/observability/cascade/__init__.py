"""Cascade analytics: graph discovery, blast radii, root causes, reports.

The campaign and exploration layers *produce* evidence (outcomes,
metrics snapshots, fault attributions); this package *interprets* it:

* :mod:`~repro.observability.cascade.graph` — fold traces or a whole
  campaign into a weighted service-dependency graph;
* :mod:`~repro.observability.cascade.blast` — who degrades when each
  service's dependencies are faulted;
* :mod:`~repro.observability.cascade.rootcause` — ranked (service,
  fault-pattern) culprits per failed assertion;
* :mod:`~repro.observability.cascade.whatif` — propagate hypothetical
  faults over the discovered graph to triage candidates before running
  them;
* :mod:`~repro.observability.cascade.report` — the single
  ResilienceReport artifact (deterministic JSON + standalone HTML).
"""

from repro.observability.cascade.blast import (
    BlastRadius,
    blast_from_attributions,
    blast_radius,
)
from repro.observability.cascade.graph import (
    DependencyGraph,
    EdgeStats,
    discover_graph,
    graph_from_campaign,
)
from repro.observability.cascade.report import (
    ResilienceReport,
    build_explore_report,
    build_report,
)
from repro.observability.cascade.rootcause import (
    RootCauseCandidate,
    rank_root_causes,
)
from repro.observability.cascade.whatif import (
    CascadePrediction,
    order_candidates,
    order_plan,
    predict_service_blast,
    simulate_fault,
)

__all__ = [
    "BlastRadius",
    "CascadePrediction",
    "DependencyGraph",
    "EdgeStats",
    "ResilienceReport",
    "RootCauseCandidate",
    "blast_from_attributions",
    "blast_radius",
    "build_explore_report",
    "build_report",
    "discover_graph",
    "graph_from_campaign",
    "order_candidates",
    "order_plan",
    "predict_service_blast",
    "rank_root_causes",
    "simulate_fault",
]
