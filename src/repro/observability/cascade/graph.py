"""Service-dependency graph discovery from traces and campaign dumps.

The observability layer reconstructs *per-request* causal trees; this
module folds many of them into the one structure every cascade
analysis needs: a weighted service-dependency graph.  Each edge
carries what the sidecars actually observed — call counts, error
counts, latency quantiles, injected-fault tallies, client retries —
so the downstream analyses (blast radius, root-cause ranking, what-if
propagation, the resilience report's SVG diagram) all read from the
same discovered model rather than from a hand-declared topology.

Two discovery paths cover the two places a graph is needed:

* :func:`discover_graph` folds live :class:`~repro.observability.trace.Trace`
  objects (the exploration layer's fault-free discovery run has them);
* :func:`graph_from_campaign` rebuilds the graph from a
  :class:`~repro.campaign.results.CampaignResult` — including one
  re-loaded from a JSON-lines dump, where no raw records survive —
  by parsing the merged per-edge metric series
  (``gremlin_requests_total{src,dst}``, the latency histograms,
  ``client_retries_total``, ``gremlin_faults_injected_total``) and
  counting error hops out of the outcomes' attribution paths.

The graph serializes to JSON (:meth:`DependencyGraph.to_dict` /
:meth:`~DependencyGraph.from_dict`) with sorted keys, so two discovery
runs over the same data produce byte-identical documents — the
resilience report's determinism contract leans on this.
"""

from __future__ import annotations

import dataclasses
import re
import typing as _t

from repro.errors import AnalysisError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.results import CampaignResult
    from repro.observability.trace import Trace

__all__ = [
    "EdgeStats",
    "DependencyGraph",
    "discover_graph",
    "graph_from_campaign",
    "parse_series",
    "parse_propagation_hop",
    "histogram_quantile",
]

#: Quantiles every edge reports, in report order.
QUANTILES = (0.5, 0.95, 0.99)

_SERIES_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')
_HOP_RE = re.compile(r"^(?P<src>.+?) -> (?P<dst>.+?) \((?P<outcome>.+)\)$")


def parse_series(key: str) -> _t.Tuple[str, _t.Dict[str, str]]:
    """Invert :func:`~repro.observability.metrics.format_series`.

    >>> parse_series('requests_total{dst="b",src="a"}')
    ('requests_total', {'dst': 'b', 'src': 'a'})
    >>> parse_series('up')
    ('up', {})
    """
    match = _SERIES_RE.match(key)
    if match is None:  # pragma: no cover - format_series output always matches
        raise AnalysisError(f"unparseable metric series key {key!r}")
    labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
    return match.group("name"), labels


def parse_propagation_hop(hop: str) -> _t.Tuple[str, str, str]:
    """Split one attribution propagation-path hop into (src, dst, outcome).

    Hops are rendered by the attribution layer as
    ``"src -> dst (status=503)"`` / ``"... (error=-1)"`` / ``"... (no-reply)"``.
    """
    match = _HOP_RE.match(hop)
    if match is None:
        raise AnalysisError(f"unparseable propagation hop {hop!r}")
    return match.group("src"), match.group("dst"), match.group("outcome")


def hop_degraded(outcome: str) -> bool:
    """True when a propagation-path hop outcome is a failure.

    ``status=N`` degrades at 5xx; any ``error=`` (transport reset,
    timeout sentinel) and an unanswered call (``no-reply``) always do.
    """
    if outcome.startswith("status="):
        try:
            return int(outcome[len("status="):]) >= 500
        except ValueError:
            return True
    return True


def histogram_quantile(data: _t.Mapping, quantile: float) -> _t.Optional[float]:
    """Estimate a quantile from fixed-bucket histogram snapshot data.

    Returns the upper bound of the first bucket whose cumulative count
    reaches the quantile — a deterministic, conservative (never
    under-reporting) estimate.  Observations above the last bound live
    in the implicit +Inf bucket; for those the recorded ``max`` is the
    tightest honest answer.  ``None`` for an empty histogram.
    """
    count = data.get("count", 0)
    if not count:
        return None
    threshold = quantile * count
    cumulative = 0
    for bound, bucket_count in zip(data["buckets"], data["counts"]):
        cumulative += bucket_count
        if cumulative >= threshold:
            return float(bound)
    return data.get("max")


@dataclasses.dataclass
class EdgeStats:
    """Observed weight of one ``src -> dst`` dependency edge."""

    src: str
    dst: str
    calls: int = 0
    errors: int = 0
    #: Sum of observed per-call latencies (seconds, virtual time).
    latency_sum: float = 0.0
    latency_max: float = 0.0
    #: Quantile label (``"p50"``...) -> estimated seconds; may be empty
    #: when the discovery source carried no latency detail.
    latency_quantiles: _t.Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Client-side retry attempts observed on the edge.
    retries: float = 0.0
    #: Fault description (``"abort(503)"``...) -> injections observed.
    faults: _t.Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Raw latencies accumulated during trace folding; dropped from the
    #: serialized form once quantiles are finalized.
    _samples: _t.List[float] = dataclasses.field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def error_rate(self) -> float:
        """Failed fraction of observed calls (0.0 for an idle edge)."""
        return self.errors / self.calls if self.calls else 0.0

    @property
    def mean_latency(self) -> _t.Optional[float]:
        return self.latency_sum / self.calls if self.calls else None

    def finalize(self) -> None:
        """Fold accumulated raw samples into quantiles (nearest-rank)."""
        if not self._samples:
            return
        ordered = sorted(self._samples)
        for quantile in QUANTILES:
            rank = max(0, min(len(ordered) - 1, int(quantile * len(ordered) + 0.5) - 1))
            self.latency_quantiles[f"p{int(quantile * 100)}"] = ordered[rank]
        self._samples = []

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "calls": self.calls,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "latency_sum": round(self.latency_sum, 9),
            "latency_max": round(self.latency_max, 9),
            "latency_quantiles": {
                label: round(value, 9)
                for label, value in sorted(self.latency_quantiles.items())
            },
            "retries": self.retries,
            "faults": dict(sorted(self.faults.items())),
        }

    @classmethod
    def from_dict(cls, doc: _t.Mapping) -> "EdgeStats":
        return cls(
            src=doc["src"],
            dst=doc["dst"],
            calls=int(doc.get("calls", 0)),
            errors=int(doc.get("errors", 0)),
            latency_sum=float(doc.get("latency_sum", 0.0)),
            latency_max=float(doc.get("latency_max", 0.0)),
            latency_quantiles=dict(doc.get("latency_quantiles", {})),
            retries=float(doc.get("retries", 0.0)),
            faults=dict(doc.get("faults", {})),
        )


class DependencyGraph:
    """A weighted service-dependency graph discovered from observations.

    Nodes are service names (including the synthetic traffic source,
    which shows up as the only caller of the entry service); edges are
    :class:`EdgeStats`.  All traversals are deterministic: neighbors
    are kept sorted, and cycles (possible in principle with mutually
    calling services) terminate via visited-set walks.
    """

    def __init__(self, edges: _t.Iterable[EdgeStats] = ()) -> None:
        self.edges: _t.Dict[_t.Tuple[str, str], EdgeStats] = {}
        for stats in edges:
            self.edges[(stats.src, stats.dst)] = stats

    # -- construction --------------------------------------------------------

    def edge(self, src: str, dst: str) -> EdgeStats:
        """The stats cell for ``src -> dst``, created on first touch."""
        stats = self.edges.get((src, dst))
        if stats is None:
            stats = self.edges[(src, dst)] = EdgeStats(src=src, dst=dst)
        return stats

    def finalize(self) -> "DependencyGraph":
        """Finalize every edge's quantiles; returns self for chaining."""
        for stats in self.edges.values():
            stats.finalize()
        return self

    # -- topology ------------------------------------------------------------

    def services(self) -> _t.List[str]:
        """Every node, sorted."""
        names: _t.Set[str] = set()
        for src, dst in self.edges:
            names.add(src)
            names.add(dst)
        return sorted(names)

    def sources(self) -> _t.List[str]:
        """Nodes nothing calls — the traffic sources, sorted."""
        callees = {dst for _, dst in self.edges}
        return sorted({src for src, _ in self.edges} - callees)

    def callers_of(self, service: str) -> _t.List[str]:
        """Direct upstream callers, sorted."""
        return sorted({src for src, dst in self.edges if dst == service})

    def callees_of(self, service: str) -> _t.List[str]:
        """Direct downstream dependencies, sorted."""
        return sorted({dst for src, dst in self.edges if src == service})

    def ancestors(self, service: str) -> _t.Set[str]:
        """Every transitive upstream caller (cycle-safe)."""
        seen: _t.Set[str] = set()
        frontier = [service]
        while frontier:
            current = frontier.pop()
            for caller in self.callers_of(current):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        return seen

    def descendants(self, service: str) -> _t.Set[str]:
        """Every transitive downstream dependency (cycle-safe)."""
        seen: _t.Set[str] = set()
        frontier = [service]
        while frontier:
            current = frontier.pop()
            for callee in self.callees_of(current):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def depth_of(self, service: str) -> int:
        """Longest hop distance from any source (sources are depth 0).

        Nodes unreachable from a source (cycle islands) report the
        number of services — they sort after everything reachable.
        """
        return self._depths().get(service, len(self.services()))

    def layers(self) -> _t.List[_t.List[str]]:
        """Services grouped by :meth:`depth_of` — the diagram's columns."""
        depths = self._depths()
        fallback = len(self.services())
        grouped: _t.Dict[int, _t.List[str]] = {}
        for service in self.services():
            grouped.setdefault(depths.get(service, fallback), []).append(service)
        return [sorted(grouped[depth]) for depth in sorted(grouped)]

    def _depths(self) -> _t.Dict[str, int]:
        depths = {source: 0 for source in self.sources()}
        # Bounded relaxation: longest path from a source, cycle-safe
        # because a node's depth can rise at most |services| times.
        for _ in range(max(1, len(self.services()))):
            changed = False
            for src, dst in sorted(self.edges):
                if src in depths and depths[src] + 1 > depths.get(dst, -1):
                    depths[dst] = depths[src] + 1
                    changed = True
            if not changed:
                break
        return depths

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "services": self.services(),
            "sources": self.sources(),
            "edges": {
                f"{src} -> {dst}": self.edges[(src, dst)].to_dict()
                for src, dst in sorted(self.edges)
            },
        }

    @classmethod
    def from_dict(cls, doc: _t.Mapping) -> "DependencyGraph":
        return cls(EdgeStats.from_dict(edge) for edge in doc.get("edges", {}).values())

    def __len__(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        return (
            f"<DependencyGraph services={len(self.services())}"
            f" edges={len(self.edges)}>"
        )


def discover_graph(traces: _t.Iterable["Trace"]) -> DependencyGraph:
    """Fold causal trees into a weighted dependency graph.

    Every span contributes one call on its edge; latency quantiles are
    exact (nearest-rank over the raw per-call samples), and a span that
    carries a fired fault tallies under that fault's description.
    """
    graph = DependencyGraph()
    for trace in traces:
        for span in trace.spans:
            stats = graph.edge(span.src, span.dst)
            stats.calls += 1
            if not span.ok:
                stats.errors += 1
            if span.latency is not None:
                stats.latency_sum += span.latency
                stats.latency_max = max(stats.latency_max, span.latency)
                stats._samples.append(span.latency)
            for fault in span.faults:
                stats.faults[fault] = stats.faults.get(fault, 0) + 1
    return graph.finalize()


def graph_from_campaign(result: "CampaignResult") -> DependencyGraph:
    """Rebuild the dependency graph from a campaign's merged evidence.

    Works on a freshly executed result *and* on one re-loaded from a
    JSON-lines dump: everything needed rides in the outcomes.  Call
    counts and latency quantiles come from the merged per-edge metric
    series; error counts come from the attribution propagation paths
    (the only per-edge failure evidence a dump retains, so the
    ``errors`` weights cover attributed failures, not every 5xx).
    """
    graph = DependencyGraph()
    merged = result.merged_metrics()
    for key, value in merged.get("counters", {}).items():
        name, labels = parse_series(key)
        if name == "gremlin_requests_total":
            graph.edge(labels["src"], labels["dst"]).calls += int(value)
        elif name == "client_retries_total":
            graph.edge(labels["src"], labels["dst"]).retries += value
        elif name == "gremlin_faults_injected_total":
            stats = graph.edge(labels["src"], labels["dst"])
            fault = labels.get("fault", "unknown")
            stats.faults[fault] = stats.faults.get(fault, 0) + value
    for key, data in merged.get("histograms", {}).items():
        name, labels = parse_series(key)
        if name != "gremlin_request_latency_seconds":
            continue
        stats = graph.edge(labels["src"], labels["dst"])
        stats.latency_sum += data.get("sum", 0.0)
        if data.get("max") is not None:
            stats.latency_max = max(stats.latency_max, data["max"])
        for quantile in QUANTILES:
            estimate = histogram_quantile(data, quantile)
            if estimate is not None:
                stats.latency_quantiles[f"p{int(quantile * 100)}"] = estimate
    for outcome in result.outcomes:
        for doc in outcome.attributions:
            for hop in doc.get("propagation_path", ()):
                src, dst, hop_outcome = parse_propagation_hop(hop)
                if hop_degraded(hop_outcome):
                    graph.edge(src, dst).errors += 1
    return graph.finalize()
