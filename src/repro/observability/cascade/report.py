"""The operator resilience report: one artifact per campaign.

Everything the cascade tier computes — the discovered dependency
graph, per-service blast radii, ranked root causes, what-if blast
predictions — plus the scorecard verdicts, folded into a single
:class:`ResilienceReport`.  It serializes two ways:

* **JSON** (:meth:`ResilienceReport.to_json`) — deterministic: keys
  sorted, timing/worker fields excluded, so the same campaign seed
  produces a byte-identical report on any backend at any worker count
  (the same contract the outcomes themselves carry).
* **HTML** (:meth:`ResilienceReport.to_html`) — a self-contained
  static page (inline CSS, inline SVG cascade diagram, no external
  assets) with per-service verdicts, ranked root causes, and blast
  tables.  Open the file; nothing else to deploy.

:func:`build_report` builds one from a live or reloaded
:class:`~repro.campaign.results.CampaignResult`;
:func:`build_explore_report` from an exploration's
:class:`~repro.explore.report.CoverageReport`.  The CLI wires both
through ``--report-out`` and the ``repro report`` subcommand.
"""

from __future__ import annotations

import dataclasses
import html as _html
import json
import math
import typing as _t

from repro.observability.cascade.blast import BlastRadius, blast_radius
from repro.observability.cascade.graph import DependencyGraph, graph_from_campaign
from repro.observability.cascade.rootcause import RootCauseCandidate, rank_root_causes
from repro.observability.cascade.whatif import predict_service_blast

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.results import CampaignResult
    from repro.explore.report import CoverageReport

__all__ = [
    "ResilienceReport",
    "build_report",
    "build_explore_report",
    "VERDICT_COLORS",
]

#: Report document format version (bumped on schema changes).
REPORT_VERSION = 1

#: Verdict -> diagram/badge color (GitHub's palette; colorblind-safe
#: enough at these four hues with the verdict word always alongside).
VERDICT_COLORS = {
    "resilient": "#2da44e",
    "at-risk": "#d4a72c",
    "vulnerable": "#cf222e",
    "untested": "#8b949e",
}


@dataclasses.dataclass
class ResilienceReport:
    """One campaign's (or exploration's) full cascade analysis."""

    #: Campaign/exploration name.
    name: str
    app: str
    seed: int
    #: ``"campaign"`` or ``"explore"`` — what produced the data.
    source: str
    #: Recipe status -> count (campaign) or execution tallies (explore).
    counts: _t.Dict[str, int]
    passed: bool
    #: Service -> resilient / at-risk / vulnerable / untested.
    verdicts: _t.Dict[str, str]
    graph: DependencyGraph
    #: Service -> observed blast radius (failing services only).
    blast: _t.Dict[str, BlastRadius]
    #: Failed check -> ranked culprit candidates.
    root_causes: _t.Dict[str, _t.List[RootCauseCandidate]]
    #: Per-service what-if blast predictions over the graph.
    predictions: _t.List[dict]
    #: Deterministic per-recipe rows (no timing/worker fields).
    recipes: _t.List[dict] = dataclasses.field(default_factory=list)
    #: Scorecard cells (campaign source only).
    scorecard: _t.Optional[dict] = None
    #: Coverage document (explore source only).
    exploration: _t.Optional[dict] = None

    def to_dict(self) -> dict:
        """Plain-data document; deterministic by construction (every
        non-deterministic execution field was excluded upstream)."""
        return {
            "report": "resilience",
            "version": REPORT_VERSION,
            "name": self.name,
            "app": self.app,
            "seed": self.seed,
            "source": self.source,
            "counts": dict(sorted(self.counts.items())),
            "passed": self.passed,
            "verdicts": dict(sorted(self.verdicts.items())),
            "graph": self.graph.to_dict(),
            "blast": {name: b.to_dict() for name, b in sorted(self.blast.items())},
            "root_causes": {
                check: [candidate.to_dict() for candidate in candidates]
                for check, candidates in sorted(self.root_causes.items())
            },
            "predictions": list(self.predictions),
            "recipes": list(self.recipes),
            "scorecard": self.scorecard,
            "exploration": self.exploration,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        """Write JSON for ``*.json`` paths, standalone HTML otherwise."""
        text = self.to_json() if path.endswith(".json") else self.to_html()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)

    # ------------------------------------------------------------- HTML

    def to_html(self) -> str:
        e = _html.escape
        verdict_rows = []
        for service in sorted(self.verdicts):
            verdict = self.verdicts[service]
            blast = self.blast.get(service)
            predicted = next(
                (p for p in self.predictions if p.get("service") == service), None
            )
            verdict_rows.append(
                "<tr>"
                f"<td>{e(service)}</td>"
                f'<td><span class="badge" style="background:'
                f'{VERDICT_COLORS.get(verdict, "#8b949e")}">{e(verdict)}</span></td>'
                f"<td>{f'{blast.score:.2f}' if blast else '—'}</td>"
                f"<td>{e(', '.join(blast.impacted_services)) if blast else '—'}</td>"
                f"<td>{predicted['blast_size'] if predicted else '—'}</td>"
                "</tr>"
            )
        cause_sections = []
        for check, candidates in sorted(self.root_causes.items()):
            rows = "".join(
                "<tr>"
                f"<td>{rank}</td><td><code>{e(c.edge)}</code></td>"
                f"<td><code>{e(c.fault)}</code></td><td>{c.frequency}</td>"
                f"<td>{c.distinct_paths}</td><td>{c.critical_fraction:.2f}</td>"
                f"<td>{c.score:.1f}</td></tr>"
                for rank, c in enumerate(candidates, 1)
            )
            cause_sections.append(
                f"<h3><code>{e(check)}</code></h3>"
                "<table><tr><th>#</th><th>injected edge</th><th>fault</th>"
                "<th>freq</th><th>paths</th><th>critical</th><th>score</th></tr>"
                f"{rows}</table>"
            )
        counts = ", ".join(
            f"{count} {e(status)}"
            for status, count in sorted(self.counts.items())
            if count
        )
        headline = "PASSED" if self.passed else "FAILED"
        headline_color = "#2da44e" if self.passed else "#cf222e"
        return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>resilience report — {e(self.name)}</title>
<style>
body {{ font: 14px/1.5 -apple-system, "Segoe UI", sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #1f2328; padding: 0 1rem; }}
h1 {{ font-size: 1.4rem; }} h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
h3 {{ font-size: 0.95rem; margin-bottom: 0.3rem; }}
table {{ border-collapse: collapse; margin: 0.5rem 0; }}
th, td {{ border: 1px solid #d0d7de; padding: 0.25rem 0.6rem; text-align: left; }}
th {{ background: #f6f8fa; }}
code {{ background: #f6f8fa; padding: 0 0.2rem; border-radius: 3px; }}
.badge {{ color: #fff; border-radius: 1em; padding: 0.1em 0.7em;
          font-size: 0.85em; white-space: nowrap; }}
.headline {{ color: {headline_color}; }}
svg text {{ font: 11px sans-serif; }}
footer {{ margin-top: 2rem; color: #57606a; font-size: 0.85em; }}
</style></head><body>
<h1>resilience report — {e(self.name)}
    <span class="headline">{headline}</span></h1>
<p>app <code>{e(self.app)}</code>, seed {self.seed}, source {e(self.source)}
   — {counts or "no executions"}</p>
<h2>cascade diagram</h2>
{self._svg()}
<h2>service verdicts</h2>
<table><tr><th>service</th><th>verdict</th><th>blast score</th>
<th>observed blast</th><th>predicted blast</th></tr>
{"".join(verdict_rows)}</table>
<h2>root causes</h2>
{"".join(cause_sections) or "<p>No conclusively failed checks.</p>"}
<footer>deterministic resilience report v{REPORT_VERSION} —
regenerate with <code>repro report</code> from the campaign dump.</footer>
</body></html>
"""

    def _svg(self) -> str:
        """Inline SVG: services as layered columns, calls as edges."""
        e = _html.escape
        layers = self.graph.layers()
        if not layers:
            return "<p>No dependency graph discovered.</p>"
        node_w, node_h, x_gap, y_gap, margin = 120, 28, 190, 48, 20
        positions: _t.Dict[str, _t.Tuple[int, int]] = {}
        height = margin * 2 + max(len(layer) for layer in layers) * y_gap
        for depth, layer in enumerate(layers):
            x = margin + depth * x_gap
            for row, service in enumerate(sorted(layer)):
                positions[service] = (x, margin + row * y_gap)
        width = margin * 2 + len(layers) * x_gap
        max_calls = max((s.calls for s in self.graph.edges.values()), default=1) or 1
        parts = [
            f'<svg viewBox="0 0 {width} {height}" width="{width}"'
            f' height="{height}" role="img">'
        ]
        for (src, dst), stats in sorted(self.graph.edges.items()):
            if src not in positions or dst not in positions:
                continue
            x1, y1 = positions[src]
            x2, y2 = positions[dst]
            stroke = "#cf222e" if stats.error_rate > 0 else "#8b949e"
            stroke_w = 1 + 2 * math.sqrt(stats.calls / max_calls)
            title = (
                f"{src} -> {dst}: {stats.calls} calls, "
                f"{stats.error_rate:.0%} errors, "
                f"p95 {stats.latency_quantiles.get('p95', 0.0) * 1000:.1f}ms"
            )
            parts.append(
                f'<line x1="{x1 + node_w}" y1="{y1 + node_h // 2}"'
                f' x2="{x2}" y2="{y2 + node_h // 2}"'
                f' stroke="{stroke}" stroke-width="{stroke_w:.1f}">'
                f"<title>{e(title)}</title></line>"
            )
        for service, (x, y) in sorted(positions.items()):
            verdict = self.verdicts.get(service, "untested")
            fill = VERDICT_COLORS.get(verdict, "#8b949e")
            parts.append(
                f'<g><rect x="{x}" y="{y}" width="{node_w}" height="{node_h}"'
                f' rx="6" fill="{fill}" fill-opacity="0.15"'
                f' stroke="{fill}" stroke-width="1.5"/>'
                f'<text x="{x + node_w // 2}" y="{y + node_h // 2 + 4}"'
                f' text-anchor="middle">{e(service)}</text>'
                f"<title>{e(service)}: {e(verdict)}</title></g>"
            )
        parts.append("</svg>")
        legend = " ".join(
            f'<span class="badge" style="background:{color}">{name}</span>'
            for name, color in VERDICT_COLORS.items()
        )
        return "".join(parts) + f"<p>{legend}</p>"


def _recipe_rows(result: "CampaignResult") -> _t.List[dict]:
    """Deterministic per-recipe rows: plan identity and verdicts only —
    no wall/orchestration/assertion times, no worker assignment."""
    rows = []
    for outcome in result.outcomes:
        rows.append(
            {
                "index": outcome.index,
                "name": outcome.name,
                "pattern": outcome.pattern,
                "service": outcome.service,
                "seed": outcome.seed,
                "status": outcome.status,
                "classification": outcome.classification,
                "failed_checks": sorted(
                    check.name
                    for check in outcome.checks
                    if not check.passed and not check.inconclusive
                ),
                "attributions": len(outcome.attributions),
            }
        )
    return rows


def build_report(result: "CampaignResult") -> "ResilienceReport":
    """Fold one campaign result into the operator resilience report."""
    graph = graph_from_campaign(result)
    card = result.scorecard()
    verdicts = card.service_verdicts()
    sources = set(graph.sources())
    for service in graph.services():
        if service not in verdicts and service not in sources:
            verdicts[service] = "untested"
    predictions = [
        predict_service_blast(graph, service)
        for service in graph.services()
        if service not in sources
    ]
    return ResilienceReport(
        name=result.name,
        app=result.app,
        seed=result.seed,
        source="campaign",
        counts=result.counts(),
        passed=result.passed,
        verdicts=verdicts,
        graph=graph,
        blast=blast_radius(result),
        root_causes=rank_root_causes(result),
        predictions=predictions,
        recipes=_recipe_rows(result),
        scorecard=card.to_dict(),
    )


def _coordinate_src(key: str) -> _t.Optional[str]:
    """Caller service of a coordinate key's faulted edge.

    ``"sweep:catalog->pricing:delay"`` -> ``"catalog"`` — the service
    whose resilience pattern the injection exercised.
    """
    parts = key.split(":")
    if len(parts) < 3:
        return None
    chain = parts[1].split("@")[0].split("->")
    return chain[-2] if len(chain) >= 2 else None


def build_explore_report(
    coverage: "CoverageReport",
    graph: _t.Optional[DependencyGraph] = None,
) -> "ResilienceReport":
    """Resilience report from an exploration run.

    Exploration has no scorecard or attribution joins; verdicts come
    from the findings (a service whose dependency faulting conclusively
    failed a check is vulnerable, everything else explored is untested
    pending a full campaign), and the graph from the discovery run when
    the caller provides it.
    """
    graph = graph if graph is not None else DependencyGraph()
    sources = set(graph.sources())
    verdicts: _t.Dict[str, str] = {
        service: "untested"
        for service in graph.services()
        if service not in sources
    }
    for finding in coverage.findings:
        culprit = _coordinate_src(finding.coordinate)
        if culprit:
            verdicts[culprit] = "vulnerable"
    predictions = [
        predict_service_blast(graph, service)
        for service in graph.services()
        if service not in sources
    ]
    counts = {
        "executed": coverage.executed,
        "pruned": coverage.pruned,
        "errors": coverage.errors,
        "findings": len(coverage.findings),
    }
    return ResilienceReport(
        name=f"explore/{coverage.app}/{coverage.strategy}",
        app=coverage.app,
        seed=coverage.seed,
        source="explore",
        counts=counts,
        passed=not coverage.findings,
        verdicts=verdicts,
        graph=graph,
        blast={},
        root_causes={},
        predictions=predictions,
        exploration=coverage.to_dict(),
    )
