"""The span model: one proxied call, assembled from observation records.

A *span* is one request/reply exchange as seen by the sidecar agent
that proxied it.  Agents do not emit a third record kind for spans —
the (request, reply) :class:`~repro.logstore.record.ObservationRecord`
pair sharing a ``span_id`` *is* the span; this module folds such pairs
into :class:`Span` values that trace reconstruction can tree up.

Because the records come from a lossy shipping pipeline (and because
experiments kill services mid-flight), assembly is defensive: every
anomaly — a reply with no request, duplicate span IDs, a span that
never completed — is reported as a loud human-readable diagnostic
rather than silently dropped, so an operator reading ``repro trace``
output knows exactly how much of the picture is missing.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.logstore.record import ObservationRecord

__all__ = ["Span", "assemble_spans"]


@dataclasses.dataclass
class Span:
    """One proxied request/reply exchange on one edge.

    ``start`` is when the request left the caller's sidecar; ``end`` is
    when the reply (or transport error) was handed back, or ``None``
    for spans whose reply record never arrived.  Each retry attempt is
    its own span — sibling spans with the same parent — so retry storms
    are visible as fan-out in the causal tree.
    """

    span_id: str
    parent_span: _t.Optional[str]
    src: str
    dst: str
    src_instance: str
    request_id: _t.Optional[str]
    method: _t.Optional[str]
    uri: _t.Optional[str]
    start: float
    end: _t.Optional[float] = None
    status: _t.Optional[int] = None
    error: _t.Optional[str] = None
    latency: _t.Optional[float] = None
    injected_delay: float = 0.0
    fault_applied: _t.Optional[str] = None
    gremlin_generated: bool = False

    @property
    def edge(self) -> _t.Tuple[str, str]:
        """The (caller, callee) pair this span traversed."""
        return (self.src, self.dst)

    @property
    def complete(self) -> bool:
        """True once the reply record was observed."""
        return self.end is not None

    @property
    def ok(self) -> bool:
        """True for a successful exchange (2xx–4xx, no transport error)."""
        return self.error is None and self.status is not None and self.status < 500

    @property
    def faults(self) -> _t.List[str]:
        """The individual fault actions applied, e.g. ``["delay(3)", "abort(503)"]``.

        ``fault_applied`` joins multiple actions with ``+`` when both a
        request- and a response-direction rule fired on the same call.
        """
        if not self.fault_applied:
            return []
        return self.fault_applied.split("+")

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """One-line human summary, the unit of trace rendering."""
        outcome = (
            f"error={self.error}" if self.error is not None
            else f"status={self.status}" if self.status is not None
            else "no-reply"
        )
        timing = f"{self.latency:.4f}s" if self.latency is not None else "?s"
        parts = [f"{self.src} -> {self.dst}", f"[{self.span_id}]", timing, outcome]
        if self.fault_applied:
            parts.append(f"fault={self.fault_applied}")
        if self.gremlin_generated:
            parts.append("(gremlin-synthesized)")
        return "  ".join(parts)


def assemble_spans(
    records: _t.Iterable[ObservationRecord],
) -> _t.Tuple[_t.List[Span], _t.List[str]]:
    """Fold observation records into spans, collecting diagnostics.

    Returns ``(spans, diagnostics)``: spans sorted by start time, and
    one message per anomaly observed.  Records without a ``span_id``
    (from deployments with tracing disabled, or mirror copies) are
    counted but excluded — they cannot participate in a causal tree.
    """
    by_id: _t.Dict[str, Span] = {}
    order: _t.List[Span] = []
    diagnostics: _t.List[str] = []
    untraced = 0

    for record in records:
        if record.span_id is None:
            untraced += 1
            continue
        span = by_id.get(record.span_id)
        if record.is_request:
            if span is not None:
                diagnostics.append(
                    f"duplicate request record for span {record.span_id}"
                    f" ({record.src} -> {record.dst} at t={record.timestamp:g});"
                    " keeping the first"
                )
                continue
            span = Span(
                span_id=record.span_id,
                parent_span=record.parent_span,
                src=record.src,
                dst=record.dst,
                src_instance=record.src_instance,
                request_id=record.request_id,
                method=record.method,
                uri=record.uri,
                start=record.timestamp,
                # Agents update the request record in place once the
                # outcome is known, so carry those fields over; the
                # reply record (if it arrives) refines end/latency.
                status=record.status,
                error=record.error,
                fault_applied=record.fault_applied,
                injected_delay=record.injected_delay,
            )
            by_id[record.span_id] = span
            order.append(span)
        else:
            if span is None:
                diagnostics.append(
                    f"reply record for span {record.span_id}"
                    f" ({record.src} -> {record.dst} at t={record.timestamp:g})"
                    " has no request record — request was lost in shipping"
                )
                latency = record.latency or 0.0
                span = Span(
                    span_id=record.span_id,
                    parent_span=record.parent_span,
                    src=record.src,
                    dst=record.dst,
                    src_instance=record.src_instance,
                    request_id=record.request_id,
                    method=record.method,
                    uri=record.uri,
                    start=record.timestamp - latency,
                )
                by_id[record.span_id] = span
                order.append(span)
            span.end = record.timestamp
            span.latency = record.latency
            span.status = record.status
            span.error = record.error
            span.fault_applied = record.fault_applied
            span.injected_delay = record.injected_delay
            span.gremlin_generated = record.gremlin_generated

    for span in order:
        if not span.complete:
            diagnostics.append(
                f"span {span.span_id} ({span.src} -> {span.dst},"
                f" started t={span.start:g}) has no reply record —"
                " call still in flight at drain, or reply lost in shipping"
            )
    if untraced:
        diagnostics.append(
            f"{untraced} record(s) carry no span ID and were excluded"
            " (untraced deployment or mirrored shadow traffic)"
        )

    order.sort(key=lambda span: (span.start, span.span_id))
    return order, diagnostics
