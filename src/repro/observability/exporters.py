"""Render metrics snapshots as Prometheus text or JSON.

Exporters consume the plain-data snapshots produced by
:meth:`repro.observability.metrics.MetricsRegistry.snapshot` (or the
merged output of :func:`~repro.observability.metrics.merge_snapshots`);
they never touch live registries, so a snapshot written to disk during
a campaign renders identically later.

The Prometheus format follows the text exposition conventions: one
``# TYPE`` comment per metric family, histogram series exploded into
cumulative ``_bucket{le=...}`` plus ``_sum``/``_count``.  The output of
``repro metrics --format prom`` can be dropped into any Prometheus
ingestion path (e.g. a node-exporter textfile collector) unchanged.
"""

from __future__ import annotations

import json
import typing as _t

__all__ = ["to_json", "to_prometheus"]


def to_json(snapshot: dict, indent: int = 2) -> str:
    """The snapshot as a JSON document (already plain data)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def _split_series(key: str) -> _t.Tuple[str, str]:
    """Split ``'name{a="x"}'`` into ``('name', 'a="x"')`` (body may be '')."""
    if "{" not in key:
        return key, ""
    name, _, rest = key.partition("{")
    return name, rest.rstrip("}")


def _with_label(body: str, extra: str) -> str:
    """Append one ``k="v"`` pair to a (possibly empty) label body."""
    return f"{body},{extra}" if body else extra


def _format_value(value: float) -> str:
    """Render a sample value, preferring integers for whole counts."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: dict) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: _t.List[str] = []
    typed: _t.Set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, _ = _split_series(key)
        declare(name, "counter")
        lines.append(f"{key} {_format_value(value)}")

    for key, value in snapshot.get("gauges", {}).items():
        name, _ = _split_series(key)
        declare(name, "gauge")
        lines.append(f"{key} {_format_value(value)}")

    for key, data in snapshot.get("histograms", {}).items():
        name, body = _split_series(key)
        declare(name, "histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            labels = _with_label(body, f'le="{bound}"')
            lines.append(f"{name}_bucket{{{labels}}} {cumulative}")
        labels = _with_label(body, 'le="+Inf"')
        lines.append(f"{name}_bucket{{{labels}}} {data['count']}")
        suffix = f"{{{body}}}" if body else ""
        lines.append(f"{name}_sum{suffix} {_format_value(data['sum'])}")
        lines.append(f"{name}_count{suffix} {data['count']}")

    return "\n".join(lines) + "\n" if lines else ""
