"""Join reconstructed traces against the active rule set.

An assertion failure tells the operator *that* the system misbehaved;
attribution tells them *why*: which installed fault rule fired, on
which edge, and how the failure propagated from the injection site up
to the entry edge.  This is the closing of the loop the paper leaves
manual — the operator reading agent logs to connect an injected abort
to the user-visible 503.

The join key is what both sides already share: a fired rule stamps
``rule.describe()`` (e.g. ``"abort(503)"``) into the observation
record's ``fault_applied``, and the rule itself names the edge it was
installed on.  Matching (edge, description) pairs therefore recovers
the exact rule — including when several rules target different edges
with the same fault shape.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.agent.rules import FaultRule
from repro.logstore.query import Query
from repro.observability.spans import Span
from repro.observability.trace import Trace, reconstruct_from_records

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.logstore.store import EventStore

__all__ = ["FaultAttribution", "attribute_trace", "attribute_run"]


@dataclasses.dataclass
class FaultAttribution:
    """One injected fault tied to one request's failure path.

    ``propagation_path`` lists edges from the injection site up to the
    trace root, each with its observed outcome — the blast radius of
    the fault as the sidecars saw it.  ``rule_id`` is ``None`` when the
    fault string matched no active rule (e.g. attribution ran against
    the wrong rule set), which is itself a loud finding.
    """

    request_id: str
    fault: str
    edge: str
    span_id: str
    rule_id: _t.Optional[int]
    rule: _t.Optional[str]
    propagation_path: _t.List[str]
    outcome: str
    #: Whether the faulted span sat on the trace's latency-critical
    #: path — the root-cause ranker's tie-break signal.  ``None`` on
    #: attributions deserialized from dumps that predate the field.
    on_critical_path: _t.Optional[bool] = None

    def to_dict(self) -> dict:
        """Plain-dict form for campaign dumps and scorecards."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultAttribution":
        """Inverse of :meth:`to_dict`."""
        return cls(**doc)

    def describe(self) -> str:
        """One-line human summary for scorecards."""
        rule = f"rule#{self.rule_id}" if self.rule_id is not None else "NO MATCHING RULE"
        path = " => ".join(self.propagation_path) if self.propagation_path else "?"
        return (
            f"{self.request_id}: {self.fault} on {self.edge} ({rule})"
            f" propagated {path}; outcome {self.outcome}"
        )


def _outcome_of(span: Span) -> str:
    if span.error is not None:
        return f"error={span.error}"
    if span.status is not None:
        return f"status={span.status}"
    return "no-reply"


def _match_rule(span: Span, fault: str, rules: _t.Sequence[FaultRule]) -> _t.Optional[FaultRule]:
    for rule in rules:
        if rule.src == span.src and rule.dst == span.dst and rule.describe() == fault:
            return rule
    return None


def attribute_trace(
    trace: Trace, rules: _t.Sequence[FaultRule]
) -> _t.List[FaultAttribution]:
    """Attributions for every fault that fired within one trace.

    A span where both a request- and a response-direction rule fired
    yields one attribution per action.  The propagation path walks
    parent links from the faulted span to its root, so the operator
    sees each hop's outcome — where a fault was absorbed by a
    resilience pattern, the path shows the recovery point.
    """
    attributions: _t.List[FaultAttribution] = []
    critical_ids = {s.span_id for s in trace.critical_path()}
    for span in trace.faulted_spans():
        path = trace.path_to_root(span.span_id)
        rendered_path = [f"{s.src} -> {s.dst} ({_outcome_of(s)})" for s in path]
        root_outcome = _outcome_of(path[-1]) if path else _outcome_of(span)
        for fault in span.faults:
            rule = _match_rule(span, fault, rules)
            attributions.append(
                FaultAttribution(
                    request_id=trace.request_id,
                    fault=fault,
                    edge=f"{span.src} -> {span.dst}",
                    span_id=span.span_id,
                    rule_id=rule.rule_id if rule is not None else None,
                    rule=str(rule) if rule is not None else None,
                    propagation_path=rendered_path,
                    outcome=root_outcome,
                    on_critical_path=span.span_id in critical_ids,
                )
            )
    return attributions


def attribute_run(
    store: "EventStore",
    rules: _t.Sequence[FaultRule],
    only_failed: bool = True,
    limit: _t.Optional[int] = None,
) -> _t.List[FaultAttribution]:
    """Attribute every faulted request in a stored run.

    Finds request IDs with at least one fired fault (a fault-index
    query, not a scan), reconstructs each one's trace, and joins it
    against ``rules``.  With ``only_failed`` (the default) traces
    whose entry edge still succeeded — the resilience pattern absorbed
    the fault — are skipped, leaving exactly the failures an operator
    must explain.  ``limit`` caps the number of traces attributed, for
    scorecards that only need examples.
    """
    faulted_ids: _t.List[str] = []
    seen: _t.Set[str] = set()
    for record in store.search_iter(Query(with_faults_only=True)):
        rid = record.request_id
        if rid is not None and rid not in seen:
            seen.add(rid)
            faulted_ids.append(rid)

    attributions: _t.List[FaultAttribution] = []
    for rid in faulted_ids:
        if limit is not None and len(attributions) >= limit:
            break
        records = store.search(Query(id_pattern=rid))
        trace = reconstruct_from_records(rid, records)
        if only_failed and not trace.failed:
            continue
        attributions.extend(attribute_trace(trace, rules))
    if limit is not None:
        attributions = attributions[:limit]
    return attributions
