"""Mergeable metrics primitives: counters, gauges, latency histograms.

The paper's agents (Section 4.1) log every observed message; operators
still need cheap aggregate signals — request rates, fault counts,
retry volume, breaker state — without re-querying the event store.
This module provides those as a pull-style registry in the spirit of
Prometheus client libraries, built around two constraints:

* **Lock-free hot path.**  Counters and histograms shard their state
  per thread: each thread owns a private cell that only it writes, so
  ``inc()``/``observe()`` never contend on a lock.  The only lock is
  taken once per (thread, metric) pair, when the cell is registered.

* **Mergeable snapshots.**  A snapshot is plain JSON-safe data, and
  snapshots from different registries combine associatively
  (:func:`merge_snapshots`): counters and histogram buckets add,
  gauges take the max.  Campaign workers each run a private registry
  and the runner folds their snapshots together afterwards — no
  cross-worker contention, same totals regardless of merge order or
  grouping.

Histograms use *fixed* bucket boundaries chosen at registration.  That
is what makes them mergeable: two histograms with identical boundaries
combine by summing bucket counts, with no re-binning error.
"""

from __future__ import annotations

import threading
import typing as _t

from repro.errors import MetricsError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_series",
    "merge_histogram_data",
    "merge_snapshots",
]

#: Default latency bucket upper bounds, in virtual-time seconds.
#: Roughly exponential, spanning sub-millisecond service times up to
#: the 30s client timeouts the bundled apps configure; values above
#: the last bound land in the implicit +Inf overflow bucket.
DEFAULT_LATENCY_BUCKETS: _t.Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def format_series(name: str, labels: _t.Mapping[str, str]) -> str:
    """Render a metric name + labels as a Prometheus series string.

    Labels are sorted so the rendering is canonical — snapshots use it
    as their dict key, which is what lets :func:`merge_snapshots` line
    series up across registries.

    >>> format_series("requests_total", {"service": "svc-1"})
    'requests_total{service="svc-1"}'
    >>> format_series("up", {})
    'up'
    """
    if not labels:
        return name
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{body}}}"


class _CounterCell:
    """One thread's private slice of a counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter:
    """A monotonically increasing sum, sharded per thread.

    ``inc()`` touches only the calling thread's cell, so concurrent
    writers never contend; ``value()`` folds the cells.  Reading while
    writers are active yields a momentary (but internally consistent
    per-cell) view — campaigns only read after workers quiesce.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: _t.List[_CounterCell] = []
        self._local = threading.local()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the calling thread's cell."""
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _CounterCell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        cell.value += amount

    def value(self) -> float:
        """The sum across every thread's cell."""
        with self._lock:
            return sum(cell.value for cell in self._cells)


class Gauge:
    """A point-in-time value (e.g. breaker state, queue depth).

    Gauges are written by one deployment thread at a time, so a plain
    attribute suffices; merging snapshots takes the max, which reads as
    "worst observed state" for the breaker-state encoding (0=closed,
    1=half-open, 2=open).
    """

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def value(self) -> float:
        """The last value set (0.0 if never set)."""
        return self._value


class _HistogramCell:
    """One thread's private slice of a histogram."""

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.total = 0
        self.sum = 0.0
        self.min: _t.Optional[float] = None
        self.max: _t.Optional[float] = None


class Histogram:
    """A fixed-bucket latency histogram, sharded per thread.

    ``buckets`` are the upper bounds of each bin; an implicit +Inf
    overflow bin is appended, so ``observe`` never drops a sample.
    Snapshots carry per-bin counts plus count/sum/min/max, and two
    snapshots with identical bounds merge exactly
    (:func:`merge_histogram_data`).
    """

    def __init__(self, buckets: _t.Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise MetricsError(f"histogram buckets must be strictly increasing, got {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._cells: _t.List[_HistogramCell] = []
        self._local = threading.local()

    def observe(self, value: float) -> None:
        """Record one sample into the calling thread's cell."""
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _HistogramCell(len(self.buckets) + 1)
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        index = _bucket_index(self.buckets, value)
        cell.counts[index] += 1
        cell.total += 1
        cell.sum += value
        if cell.min is None or value < cell.min:
            cell.min = value
        if cell.max is None or value > cell.max:
            cell.max = value

    def data(self) -> dict:
        """Fold the cells into one plain-data histogram snapshot."""
        counts = [0] * (len(self.buckets) + 1)
        total, total_sum = 0, 0.0
        lo: _t.Optional[float] = None
        hi: _t.Optional[float] = None
        with self._lock:
            cells = list(self._cells)
        for cell in cells:
            for i, c in enumerate(cell.counts):
                counts[i] += c
            total += cell.total
            total_sum += cell.sum
            if cell.min is not None and (lo is None or cell.min < lo):
                lo = cell.min
            if cell.max is not None and (hi is None or cell.max > hi):
                hi = cell.max
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "count": total,
            "sum": total_sum,
            "min": lo,
            "max": hi,
        }


def _bucket_index(bounds: _t.Tuple[float, ...], value: float) -> int:
    """Index of the first bound >= value (len(bounds) for overflow)."""
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= bounds[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class MetricsRegistry:
    """Named, labelled metric series with one snapshot surface.

    Series are identified by (name, sorted labels); asking twice for
    the same series returns the same underlying metric, so call sites
    need no caching.  ``snapshot()`` renders everything to plain data
    keyed by the canonical Prometheus series string.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: _t.Dict[str, Counter] = {}
        self._gauges: _t.Dict[str, Gauge] = {}
        self._histograms: _t.Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter series ``name{labels}``, created on first use."""
        key = format_series(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge series ``name{labels}``, created on first use."""
        key = format_series(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        buckets: _t.Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram series ``name{labels}``, created on first use.

        Re-registering an existing series with different bounds is a
        :class:`MetricsError`: silently returning the old histogram
        would record into buckets the caller did not ask for.
        """
        key = format_series(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets)
            elif metric.buckets != tuple(float(b) for b in buckets):
                raise MetricsError(
                    f"series {key!r} already registered with buckets "
                    f"{metric.buckets}, cannot re-register with {tuple(buckets)}"
                )
        return metric

    def snapshot(self) -> dict:
        """Plain-data view of every series, JSON-safe and mergeable."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: metric.value() for key, metric in sorted(counters.items())},
            "gauges": {key: metric.value() for key, metric in sorted(gauges.items())},
            "histograms": {key: metric.data() for key, metric in sorted(histograms.items())},
        }


def merge_histogram_data(left: dict, right: dict) -> dict:
    """Combine two histogram snapshots with identical bucket bounds.

    Bucket counts, totals and sums add; min/max take the extremes.
    Because the bounds are fixed, the merge is exact — the result is
    indistinguishable from one histogram having observed both streams.
    """
    if left["buckets"] != right["buckets"]:
        raise MetricsError(
            f"cannot merge histograms with different buckets: "
            f"{left['buckets']} vs {right['buckets']}"
        )
    mins = [m for m in (left["min"], right["min"]) if m is not None]
    maxes = [m for m in (left["max"], right["max"]) if m is not None]
    return {
        "buckets": list(left["buckets"]),
        "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
        "count": left["count"] + right["count"],
        "sum": left["sum"] + right["sum"],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold registry snapshots into one: counters/histograms add, gauges max.

    The fold is associative and commutative, so campaign workers can be
    merged in any order or grouping — pairwise, all at once, or
    incrementally as each worker finishes — with identical results.
    An empty call returns an empty (all-zero) snapshot.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            merged["counters"][key] = merged["counters"].get(key, 0.0) + value
        for key, value in snap.get("gauges", {}).items():
            previous = merged["gauges"].get(key)
            merged["gauges"][key] = value if previous is None else max(previous, value)
        for key, data in snap.get("histograms", {}).items():
            previous = merged["histograms"].get(key)
            merged["histograms"][key] = (
                dict(data) if previous is None else merge_histogram_data(previous, data)
            )
    for section in ("counters", "gauges", "histograms"):
        merged[section] = dict(sorted(merged[section].items()))
    return merged
