"""repro: a reproduction of *Gremlin: Systematic Resilience Testing of
Microservices* (Heorhiadi et al., ICDCS 2016).

The package re-implements the full Gremlin system — SDN-style control
plane (Recipe Translator, Failure Orchestrator, Assertion Checker) and
data plane (sidecar proxy agents with Abort/Delay/Modify fault
primitives) — together with every substrate it needs to run at laptop
scale: a deterministic discrete-event simulator, a network transport
and HTTP layer, a microservice runtime with the four resilience
patterns, a service registry, request tracing, a centralized event-log
store, and load generators.

Quick start::

    from repro import (
        Gremlin, Overload, HasBoundedRetries, ClosedLoopLoad, build_twotier,
    )

    deployment = build_twotier().deploy(seed=42)
    source = deployment.add_traffic_source("ServiceA")
    gremlin = Gremlin(deployment)

    gremlin.inject(Overload("ServiceB"))
    ClosedLoopLoad(num_requests=100).run(source)
    print(gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5)))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.agent import (
    FaultRule,
    FaultType,
    GremlinAgent,
    MessageDirection,
    TCP_RESET,
    abort,
    delay,
    modify,
)
from repro.apps import (
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_enterprise_app,
    build_messagebus_app,
    build_tree_app,
    build_twotier,
    build_wordpress_app,
)
from repro.bus import BrokerConfig, broker_definition, publish
from repro.core import (
    AbortCalls,
    ChaosMonkey,
    CheckResult,
    CheckStatus,
    Combine,
    Crash,
    Degrade,
    DelayCalls,
    Disconnect,
    FakeSuccess,
    Gremlin,
    Hang,
    HasBoundedRetries,
    HasBulkhead,
    HasCircuitBreaker,
    HasTimeouts,
    ModifyReplies,
    NetworkPartition,
    Overload,
    Recipe,
    RecipeResult,
    generate_recipes,
    get_replies,
    get_requests,
)
from repro.loadgen import ApacheBench, ClosedLoopLoad, OpenLoopLoad
from repro.microservice import (
    Application,
    ApplicationGraph,
    Deployment,
    PolicySpec,
    ServiceDefinition,
)
from repro.simulation import Simulator

__version__ = "1.0.0"

__all__ = [
    "AbortCalls",
    "ApacheBench",
    "Application",
    "ApplicationGraph",
    "BrokerConfig",
    "ChaosMonkey",
    "CheckResult",
    "CheckStatus",
    "ClosedLoopLoad",
    "Combine",
    "Crash",
    "Degrade",
    "DelayCalls",
    "Deployment",
    "Disconnect",
    "FakeSuccess",
    "FaultRule",
    "FaultType",
    "Gremlin",
    "GremlinAgent",
    "Hang",
    "HasBoundedRetries",
    "HasBulkhead",
    "HasCircuitBreaker",
    "HasTimeouts",
    "MessageDirection",
    "ModifyReplies",
    "NetworkPartition",
    "OpenLoopLoad",
    "Overload",
    "PolicySpec",
    "Recipe",
    "RecipeResult",
    "ServiceDefinition",
    "Simulator",
    "TCP_RESET",
    "abort",
    "broker_definition",
    "build_billing_app",
    "build_coreservice_app",
    "build_database_app",
    "build_enterprise_app",
    "build_messagebus_app",
    "build_tree_app",
    "build_twotier",
    "build_wordpress_app",
    "delay",
    "generate_recipes",
    "get_replies",
    "get_requests",
    "modify",
    "publish",
    "__version__",
]
