"""The centralized event store (Elasticsearch stand-in).

Agents ship observation records here (via the
:class:`~repro.logstore.pipeline.LogPipeline`); the Assertion Checker
queries them back, filtered and time-sorted, exactly as the paper's
``GetRequests``/``GetReplies`` do against Elasticsearch.

The store keeps a primary time-ordered list plus a (src, dst) pair
index, since every assertion in Table 3 scopes to a service pair.
"""

from __future__ import annotations

import bisect
import typing as _t

from repro.logstore.query import Query
from repro.logstore.record import ObservationRecord

__all__ = ["EventStore"]


class EventStore:
    """Append-only, queryable store of observation records."""

    def __init__(self) -> None:
        self._records: list[ObservationRecord] = []
        self._timestamps: list[float] = []
        self._pair_index: dict[tuple[str, str], list[int]] = {}
        self._sorted = True

    def append(self, record: ObservationRecord) -> None:
        """Ingest one record (agents go through the pipeline instead)."""
        if self._records and record.timestamp < self._records[-1].timestamp:
            self._sorted = False
        index = len(self._records)
        self._records.append(record)
        self._timestamps.append(record.timestamp)
        self._pair_index.setdefault((record.src, record.dst), []).append(index)

    def extend(self, records: _t.Iterable[ObservationRecord]) -> None:
        """Ingest many records."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop everything — used between chained recipe steps when the
        operator wants a clean observation window."""
        self._records.clear()
        self._timestamps.clear()
        self._pair_index.clear()
        self._sorted = True

    def all_records(self) -> list[ObservationRecord]:
        """Every record, sorted by timestamp."""
        self._ensure_sorted()
        return list(self._records)

    def search(self, query: Query) -> list[ObservationRecord]:
        """Records matching ``query``, sorted by timestamp.

        Uses the pair index when both ``src`` and ``dst`` are bound
        (the common assertion shape), binary-searching the time range
        otherwise.
        """
        self._ensure_sorted()
        candidates = self._candidates(query)
        return [record for record in candidates if query.matches(record)]

    def count(self, query: Query) -> int:
        """Number of records matching ``query``."""
        return len(self.search(query))

    # -- internals ------------------------------------------------------------

    def _candidates(self, query: Query) -> _t.Iterable[ObservationRecord]:
        if query.src is not None and query.dst is not None:
            indexes = self._pair_index.get((query.src, query.dst), [])
            return (self._records[i] for i in indexes)
        lo = 0
        hi = len(self._records)
        if query.since is not None:
            lo = bisect.bisect_left(self._timestamps, query.since)
        if query.until is not None:
            hi = bisect.bisect_right(self._timestamps, query.until)
        return self._records[lo:hi]

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        order = sorted(range(len(self._records)), key=lambda i: self._timestamps[i])
        remap = {old: new for new, old in enumerate(order)}
        self._records = [self._records[i] for i in order]
        self._timestamps = [r.timestamp for r in self._records]
        for indexes in self._pair_index.values():
            indexes[:] = sorted(remap[i] for i in indexes)
        self._sorted = True

    def __repr__(self) -> str:
        return f"<EventStore records={len(self._records)} pairs={len(self._pair_index)}>"
