"""The centralized event store (Elasticsearch stand-in).

Agents ship observation records here (via the
:class:`~repro.logstore.pipeline.LogPipeline`); the Assertion Checker
queries them back, filtered and time-sorted, exactly as the paper's
``GetRequests``/``GetReplies`` do against Elasticsearch.

Like Elasticsearch, the store answers scoped queries from secondary
indexes instead of scanning the whole trace: every record position is
posted to hash indexes on ``kind``, ``src``, ``dst``, the
``(src, dst)`` pair, ``status`` and fault presence, all layered over
the primary time-sorted record array.  A small planner picks the most
selective index bound by the query, applies ``since``/``until`` with
two binary searches over the chosen posting list, and post-filters the
surviving candidates with :meth:`Query.matches` — so a pair-scoped
assertion query touches only that pair's records, not the trace.

``strategy="linear"`` keeps the original full-scan evaluation as an
escape hatch (mirroring ``make_matcher`` in :mod:`repro.agent.matcher`);
both strategies return byte-identical results.

Records are mutable (the agent updates ``status``/``fault_applied`` in
place once a call's outcome is known — the in-process analogue of an
Elasticsearch document update).  The store subscribes to those updates
via a per-record hook and maintains the affected posting lists
*additively*: the position is appended to the new value's bucket and
the stale entry in the old bucket survives as a false positive that the
post-filter discards.  Buckets therefore always over-approximate, never
miss — which is the invariant the planner's correctness rests on.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing as _t

from repro.logstore.index import PostingList, bisect_left_by, bisect_right_by
from repro.logstore.query import Query, exact_id_pattern
from repro.logstore.record import ObservationRecord

__all__ = ["EventStore", "QueryPlan", "STORE_STRATEGIES"]

#: Valid values for ``EventStore(strategy=...)``.
STORE_STRATEGIES = ("indexed", "linear")


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """How the store intends to evaluate one query (introspection aid).

    ``driver`` names the index that supplies candidates: one of
    ``"pair"``, ``"src"``, ``"dst"``, ``"kind"``, ``"status"``,
    ``"fault"``, ``"rid"`` (exact request-ID lookup), or ``"time"``
    when no indexed field is bound and the primary array is
    range-scanned.  ``candidates`` counts the records that will be
    post-filtered — the cost of the query.
    """

    strategy: str
    driver: str
    candidates: int
    total: int

    def __str__(self) -> str:
        return (
            f"{self.strategy}/{self.driver}: {self.candidates} of"
            f" {self.total} records examined"
        )


class EventStore:
    """Append-only, queryable store of observation records."""

    def __init__(self, strategy: str = "indexed") -> None:
        if strategy not in STORE_STRATEGIES:
            raise ValueError(
                f"unknown store strategy {strategy!r}; expected one of {STORE_STRATEGIES}"
            )
        self._strategy = strategy
        self._records: list[ObservationRecord] = []
        self._timestamps: list[float] = []
        self._sorted = True
        # Secondary indexes (maintained only under the indexed strategy).
        self._kind_ix: dict[str, PostingList] = {}
        self._src_ix: dict[str, PostingList] = {}
        self._dst_ix: dict[str, PostingList] = {}
        self._pair_ix: dict[tuple[str, str], PostingList] = {}
        self._status_ix: dict[int, PostingList] = {}
        self._fault_ix = PostingList()
        #: Exact request-ID index: trace reconstruction pulls one
        #: request's records without scanning the run (request_id is an
        #: identity field, so no mutation hook is needed).
        self._rid_ix: dict[str, PostingList] = {}
        #: id(record) -> position, for translating in-place mutations
        #: into index updates.
        self._pos_of: dict[int, int] = {}

    @property
    def strategy(self) -> str:
        """The evaluation strategy this store was built with."""
        return self._strategy

    # -- ingest ----------------------------------------------------------------

    def append(self, record: ObservationRecord) -> None:
        """Ingest one record (agents go through the pipeline instead)."""
        if self._timestamps and record.timestamp < self._timestamps[-1]:
            self._sorted = False
        position = len(self._records)
        self._records.append(record)
        self._timestamps.append(record.timestamp)
        if self._strategy == "indexed":
            self._index_record(record, position)

    def extend(self, records: _t.Iterable[ObservationRecord]) -> None:
        """Ingest many records (the pipeline's batched flush path).

        Equivalent to repeated :meth:`append`, but with the attribute
        lookups hoisted out of the loop so large batches amortize the
        per-record index maintenance.
        """
        records_append = self._records.append
        ts_append = self._timestamps.append
        indexed = self._strategy == "indexed"
        index_record = self._index_record
        position = len(self._records)
        last_ts = self._timestamps[-1] if self._timestamps else float("-inf")
        for record in records:
            ts = record.timestamp
            if ts < last_ts:
                self._sorted = False
            else:
                last_ts = ts
            records_append(record)
            ts_append(ts)
            if indexed:
                index_record(record, position)
            position += 1

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop everything — used between chained recipe steps when the
        operator wants a clean observation window."""
        self._records.clear()
        self._timestamps.clear()
        self._sorted = True
        self._kind_ix.clear()
        self._src_ix.clear()
        self._dst_ix.clear()
        self._pair_ix.clear()
        self._status_ix.clear()
        self._fault_ix = PostingList()
        self._rid_ix.clear()
        self._pos_of.clear()

    # -- queries -----------------------------------------------------------------

    def all_records(self) -> list[ObservationRecord]:
        """Every record, sorted by timestamp."""
        self._ensure_sorted()
        return list(self._records)

    def search(self, query: Query) -> list[ObservationRecord]:
        """Records matching ``query``, sorted by timestamp.

        Eager twin of :meth:`search_iter`: a plain loop (no generator
        resumption per record) because this is the assertion checker's
        hot path.
        """
        positions, lo, hi = self._plan_bounds(query)
        records = self._records
        predicate = query.predicate
        out: list[ObservationRecord] = []
        append = out.append
        if positions is None:
            for record in records[lo:hi]:
                if predicate(record):
                    append(record)
        else:
            for index in range(lo, hi):
                record = records[positions[index]]
                if predicate(record):
                    append(record)
        return out

    def search_iter(self, query: Query) -> _t.Iterator[ObservationRecord]:
        """Lazily yield records matching ``query`` in timestamp order.

        The planner's candidate stream is filtered on the fly; no
        intermediate list is materialized, so early-exiting consumers
        pay only for the candidates they pull.
        """
        positions, lo, hi = self._plan_bounds(query)
        records = self._records
        predicate = query.predicate
        if positions is None:
            for position in range(lo, hi):
                record = records[position]
                if predicate(record):
                    yield record
            return
        for index in range(lo, hi):
            record = records[positions[index]]
            if predicate(record):
                yield record

    def count(self, query: Query) -> int:
        """Number of records matching ``query``.

        Streams over the planned candidate range without collecting
        matches into a list.
        """
        positions, lo, hi = self._plan_bounds(query)
        records = self._records
        predicate = query.predicate
        total = 0
        if positions is None:
            for record in records[lo:hi]:
                if predicate(record):
                    total += 1
        else:
            for index in range(lo, hi):
                if predicate(records[positions[index]]):
                    total += 1
        return total

    def plan(self, query: Query) -> QueryPlan:
        """Explain how ``query`` would be evaluated (for tests/tuning)."""
        positions, lo, hi = self._plan_bounds(query)
        if positions is None:
            driver = "time" if self._strategy == "indexed" else "scan"
        else:
            driver = self._driver_name(query)
        return QueryPlan(self._strategy, driver, hi - lo, len(self._records))

    def _plan_bounds(
        self, query: Query
    ) -> tuple[_t.Optional[list[int]], int, int]:
        """Plan one query: candidate positions (or ``None`` for a
        primary range-scan) plus the ``[lo, hi)`` window the time
        bounds bisect out of them."""
        self._ensure_sorted()
        positions = self._plan_positions(query)
        if positions is None:
            lo, hi = self._primary_time_bounds(query)
            return None, lo, hi
        timestamps = self._timestamps
        lo, hi = 0, len(positions)
        if query.since is not None:
            lo = bisect_left_by(positions, timestamps, query.since)
        if query.until is not None:
            hi = bisect_right_by(positions, timestamps, query.until)
        return positions, lo, hi

    # -- planner -----------------------------------------------------------------

    def _plan_positions(self, query: Query) -> _t.Optional[list[int]]:
        """Candidate positions from the most selective bound index.

        Returns ``None`` when no indexed field is bound (or under the
        linear strategy), meaning: range-scan the primary array.
        Selectivity is judged by posting-list length; every posting
        list over-approximates its predicate, so the shortest one
        minimizes post-filter work without risking false negatives.
        """
        if self._strategy == "linear":
            return None
        best: _t.Optional[list[int]] = None
        if query.src is not None and query.dst is not None:
            # The pair composite is never longer than either side alone.
            best = self._bucket(self._pair_ix, (query.src, query.dst))
        elif query.src is not None:
            best = self._bucket(self._src_ix, query.src)
        elif query.dst is not None:
            best = self._bucket(self._dst_ix, query.dst)
        if query.kind is not None:
            best = self._shorter(best, self._bucket(self._kind_ix, query.kind))
        if query.status is not None:
            best = self._shorter(best, self._bucket(self._status_ix, query.status))
        if query.with_faults_only:
            best = self._shorter(best, self._fault_ix.get())
        exact_id = exact_id_pattern(query.id_pattern)
        if exact_id is not None:
            best = self._shorter(best, self._bucket(self._rid_ix, exact_id))
        return best

    def _driver_name(self, query: Query) -> str:
        """Which index `_plan_positions` chose (mirrors its logic)."""
        options: list[tuple[int, str]] = []
        if query.src is not None and query.dst is not None:
            options.append((len(self._bucket(self._pair_ix, (query.src, query.dst))), "pair"))
        elif query.src is not None:
            options.append((len(self._bucket(self._src_ix, query.src)), "src"))
        elif query.dst is not None:
            options.append((len(self._bucket(self._dst_ix, query.dst)), "dst"))
        if query.kind is not None:
            options.append((len(self._bucket(self._kind_ix, query.kind)), "kind"))
        if query.status is not None:
            options.append((len(self._bucket(self._status_ix, query.status)), "status"))
        if query.with_faults_only:
            options.append((len(self._fault_ix.get()), "fault"))
        exact_id = exact_id_pattern(query.id_pattern)
        if exact_id is not None:
            options.append((len(self._bucket(self._rid_ix, exact_id)), "rid"))
        return min(options)[1] if options else "time"

    @staticmethod
    def _bucket(table: dict, key) -> list[int]:
        posting = table.get(key)
        return posting.get() if posting is not None else []

    @staticmethod
    def _shorter(
        current: _t.Optional[list[int]], candidate: list[int]
    ) -> list[int]:
        if current is None or len(candidate) < len(current):
            return candidate
        return current

    def _primary_time_bounds(self, query: Query) -> tuple[int, int]:
        lo = 0
        hi = len(self._records)
        if query.since is not None:
            lo = bisect.bisect_left(self._timestamps, query.since)
        if query.until is not None:
            hi = bisect.bisect_right(self._timestamps, query.until)
        return lo, hi

    # -- index maintenance -------------------------------------------------------

    def _index_record(self, record: ObservationRecord, position: int) -> None:
        kind_posting = self._kind_ix.get(record.kind)
        if kind_posting is None:
            kind_posting = self._kind_ix[record.kind] = PostingList()
        kind_posting.append(position)
        src_posting = self._src_ix.get(record.src)
        if src_posting is None:
            src_posting = self._src_ix[record.src] = PostingList()
        src_posting.append(position)
        dst_posting = self._dst_ix.get(record.dst)
        if dst_posting is None:
            dst_posting = self._dst_ix[record.dst] = PostingList()
        dst_posting.append(position)
        pair = (record.src, record.dst)
        pair_posting = self._pair_ix.get(pair)
        if pair_posting is None:
            pair_posting = self._pair_ix[pair] = PostingList()
        pair_posting.append(position)
        if record.status is not None:
            status_posting = self._status_ix.get(record.status)
            if status_posting is None:
                status_posting = self._status_ix[record.status] = PostingList()
            status_posting.append(position)
        if record.fault_applied is not None:
            self._fault_ix.append(position)
        if record.request_id is not None:
            rid_posting = self._rid_ix.get(record.request_id)
            if rid_posting is None:
                rid_posting = self._rid_ix[record.request_id] = PostingList()
            rid_posting.append(position)
        self._pos_of[id(record)] = position
        record.__dict__["_index_hook"] = self._record_updated

    def _record_updated(self, record: ObservationRecord, field: str, value) -> None:
        """React to an in-place record mutation (status / fault update).

        Additive maintenance: post the position under the new value and
        leave the old entry to be discarded by the post-filter.  A
        record the store no longer tracks (cleared, or owned by another
        store) is ignored.
        """
        position = self._pos_of.get(id(record))
        if position is None:
            return
        if field == "status":
            if value is not None:
                self._status_ix.setdefault(value, PostingList()).add(position)
        elif field == "fault_applied":
            if value is not None:
                self._fault_ix.add(position)

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        order = sorted(range(len(self._records)), key=self._timestamps.__getitem__)
        self._records = [self._records[i] for i in order]
        self._timestamps = [r.timestamp for r in self._records]
        self._sorted = True
        if self._strategy == "indexed":
            self._rebuild_indexes()

    def _rebuild_indexes(self) -> None:
        """Re-derive every index from the (re-sorted) record array.

        Also drops any stale false-positive entries the additive
        mutation path accumulated.
        """
        self._kind_ix.clear()
        self._src_ix.clear()
        self._dst_ix.clear()
        self._pair_ix.clear()
        self._status_ix.clear()
        self._fault_ix = PostingList()
        self._rid_ix.clear()
        self._pos_of.clear()
        for position, record in enumerate(self._records):
            self._index_record(record, position)

    def __repr__(self) -> str:
        return (
            f"<EventStore strategy={self._strategy} records={len(self._records)}"
            f" pairs={len(self._pair_ix)}>"
        )
