"""Secondary-index structures for the event store.

The paper's Assertion Checker answers Table 3 queries against
Elasticsearch, which keeps an inverted index per field so a scoped
query never scans the whole trace.  This module provides the
in-process analogue: :class:`PostingList` — a lazily-sorted list of
record *positions* (offsets into the store's time-ordered record
array) — plus the position-space binary searches the query planner
uses to apply ``since``/``until`` bounds to a posting list without
touching the records themselves.

Two invariants make the design fast and mutation-tolerant:

* positions in a clean posting list are ascending, and the record
  array is time-sorted, so the timestamps along a posting list are
  non-decreasing — time bounds become two bisects;
* posting lists for *mutable* fields (``status``, ``fault_applied``)
  are maintained additively: an in-place record update appends the
  position to the new value's bucket and leaves the old entry behind
  as a harmless false positive (the store post-filters every candidate
  with :meth:`~repro.logstore.query.Query.matches`).  Buckets only
  ever miss nothing; they may over-approximate until the next rebuild.
"""

from __future__ import annotations

import typing as _t

__all__ = ["PostingList", "bisect_left_by", "bisect_right_by"]


def bisect_left_by(
    positions: _t.Sequence[int], timestamps: _t.Sequence[float], bound: float
) -> int:
    """First index into ``positions`` whose timestamp is >= ``bound``.

    ``positions`` must be ascending and ``timestamps`` time-sorted, so
    ``timestamps[positions[i]]`` is non-decreasing.  (A hand-rolled
    bisect because :func:`bisect.bisect_left` only grew ``key=`` in
    Python 3.10 and we support 3.9.)
    """
    lo, hi = 0, len(positions)
    while lo < hi:
        mid = (lo + hi) // 2
        if timestamps[positions[mid]] < bound:
            lo = mid + 1
        else:
            hi = mid
    return lo


def bisect_right_by(
    positions: _t.Sequence[int], timestamps: _t.Sequence[float], bound: float
) -> int:
    """First index into ``positions`` whose timestamp is > ``bound``."""
    lo, hi = 0, len(positions)
    while lo < hi:
        mid = (lo + hi) // 2
        if timestamps[positions[mid]] <= bound:
            lo = mid + 1
        else:
            hi = mid
    return lo


class PostingList:
    """Ascending list of record positions with deferred re-sorting.

    Normal ingest appends monotonically increasing positions, which
    keeps the list sorted for free.  Additive mutation updates and
    re-sort remaps may insert arbitrary positions; those mark the list
    dirty, and the next read pays one sort + dedupe (amortized — reads
    between writes reuse the clean list).
    """

    __slots__ = ("_positions", "_dirty")

    def __init__(self, positions: _t.Optional[list[int]] = None) -> None:
        self._positions: list[int] = positions if positions is not None else []
        self._dirty = False

    def append(self, position: int) -> None:
        """Add a position known to be >= every existing entry."""
        self._positions.append(position)

    def add(self, position: int) -> None:
        """Add an arbitrary position (mutation update); defers the sort."""
        self._positions.append(position)
        self._dirty = True

    def get(self) -> list[int]:
        """The clean, ascending, duplicate-free position list."""
        if self._dirty:
            self._positions = sorted(set(self._positions))
            self._dirty = False
        return self._positions

    def __len__(self) -> int:
        return len(self.get())

    def __repr__(self) -> str:
        return f"<PostingList n={len(self._positions)} dirty={self._dirty}>"
