"""Log shipping pipeline (the logstash stand-in).

Agents emit observation records into a :class:`LogPipeline`, which
delivers them to the :class:`~repro.logstore.store.EventStore` — either
immediately or after a configurable shipping delay, modelling the
collection latency a real logstash -> Elasticsearch hop adds.  The
Assertion Checker can wait for the pipeline to drain before running
queries, mirroring how the paper's checker runs *after* the failure
window so logs have landed.

Delivery into the store can additionally be *batched*
(``flush_size > 1``): records accumulate in a buffer and land through
one :meth:`EventStore.extend` call per batch, amortizing the store's
index maintenance the way a bulk-indexing logstash output amortizes
Elasticsearch writes.  :meth:`drained` flushes the buffer, so the
checker's drain-then-query discipline always sees every record.
"""

from __future__ import annotations

from repro.logstore.record import ObservationRecord
from repro.logstore.store import EventStore
from repro.simulation.events import SimEvent
from repro.simulation.kernel import Simulator

__all__ = ["LogPipeline"]


class LogPipeline:
    """Ships records from agents to the central store.

    Parameters
    ----------
    shipping_delay:
        Virtual seconds between emission at the agent and visibility in
        the store.  0 (default) makes records visible immediately,
        which keeps unit tests simple; benchmarks that model pipeline
        lag set it explicitly.
    loss_probability:
        Fraction of records dropped in transit (a lossy UDP shipper or
        an overloaded collector).  Drawn from the simulator's seeded
        RNG, so lossy runs are still reproducible.  Robustness tests
        use this to verify that missing observations make checks
        *inconclusive* rather than silently wrong.
    flush_size:
        Records buffered before one batched store write.  1 (default)
        delivers each record the moment it arrives — the seed
        behaviour every existing test relies on.  Larger sizes trade
        visibility lag inside a batch for amortized index maintenance;
        call :meth:`flush` (or :meth:`drained`, which flushes) before
        querying.
    """

    def __init__(
        self,
        sim: Simulator,
        store: EventStore,
        shipping_delay: float = 0.0,
        loss_probability: float = 0.0,
        flush_size: int = 1,
    ) -> None:
        if shipping_delay < 0:
            raise ValueError(f"shipping_delay must be >= 0, got {shipping_delay}")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        if flush_size < 1:
            raise ValueError(f"flush_size must be >= 1, got {flush_size}")
        self.sim = sim
        self.store = store
        self.shipping_delay = shipping_delay
        self.loss_probability = loss_probability
        self.flush_size = flush_size
        self._rng = sim.rng("logpipeline.loss")
        self._buffer: list[ObservationRecord] = []
        self._shipping = 0
        self._emitted = 0
        self._lost = 0
        self._flushes = 0
        self._drain_waiters: list[SimEvent] = []

    @property
    def emitted(self) -> int:
        """Total records emitted into the pipeline so far."""
        return self._emitted

    @property
    def in_flight(self) -> int:
        """Records emitted but not yet visible in the store.

        Counts both records still traversing the shipping delay and
        records sitting in an unflushed batch buffer.
        """
        return self._shipping + len(self._buffer)

    @property
    def lost(self) -> int:
        """Records dropped in transit so far."""
        return self._lost

    @property
    def flushes(self) -> int:
        """Batched store writes performed so far (0 when unbatched)."""
        return self._flushes

    def emit(self, record: ObservationRecord) -> None:
        """Accept one record from an agent."""
        self._emitted += 1
        if self.loss_probability > 0.0 and self._rng.random() < self.loss_probability:
            self._lost += 1
            return
        if self.shipping_delay == 0.0:
            self._deliver(record)
            return
        self._shipping += 1

        def _land(_: SimEvent) -> None:
            self._shipping -= 1
            self._deliver(record)
            if self._shipping == 0:
                self.flush()
                waiters, self._drain_waiters = self._drain_waiters, []
                for waiter in waiters:
                    waiter.succeed()

        self.sim.timeout(self.shipping_delay).add_callback(_land)

    def flush(self) -> int:
        """Write any buffered batch to the store; returns records landed."""
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        self.store.extend(batch)
        self._flushes += 1
        return len(batch)

    def drained(self) -> SimEvent:
        """Event that succeeds once no records are in flight.

        Flushes the batch buffer, so by the time the event fires every
        emitted-and-not-lost record is queryable.  Succeeds immediately
        if the pipeline is already empty.
        """
        ev = self.sim.event()
        if self._shipping == 0:
            self.flush()
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    # -- internals ------------------------------------------------------------

    def _deliver(self, record: ObservationRecord) -> None:
        if self.flush_size == 1:
            self.store.append(record)
            return
        self._buffer.append(record)
        if len(self._buffer) >= self.flush_size:
            self.flush()

    def __repr__(self) -> str:
        return (
            f"<LogPipeline emitted={self._emitted} in_flight={self.in_flight}"
            f" delay={self.shipping_delay} flush_size={self.flush_size}>"
        )
