"""Centralized observation log: record schema, store, query DSL, pipeline.

Plays the role of the paper's logstash + Elasticsearch stack: Gremlin
agents ship observation records here and the Assertion Checker queries
them back.
"""

from repro.logstore.export import dump_jsonl, dumps, load_jsonl, loads
from repro.logstore.index import PostingList
from repro.logstore.pipeline import LogPipeline
from repro.logstore.query import Query, compile_id_pattern
from repro.logstore.record import ObservationKind, ObservationRecord
from repro.logstore.store import STORE_STRATEGIES, EventStore, QueryPlan

__all__ = [
    "EventStore",
    "LogPipeline",
    "ObservationKind",
    "ObservationRecord",
    "PostingList",
    "Query",
    "QueryPlan",
    "STORE_STRATEGIES",
    "compile_id_pattern",
    "dump_jsonl",
    "dumps",
    "load_jsonl",
    "loads",
]
