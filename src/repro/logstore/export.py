"""JSON-lines export/import for observation logs.

Real Gremlin deployments keep their observation logs in Elasticsearch,
where they outlive the test run and feed later analysis.  This module
gives the in-process store the same durability: dump an
:class:`~repro.logstore.store.EventStore` to a JSON-lines file and load
it back (e.g. to re-run assertions offline, or to diff two runs).
"""

from __future__ import annotations

import json
import typing as _t

from repro.errors import AssertionQueryError
from repro.logstore.record import ObservationRecord
from repro.logstore.store import EventStore

__all__ = ["dump_jsonl", "load_jsonl", "dumps", "loads"]


def dumps(store: EventStore) -> str:
    """Serialize every record to JSON-lines text (one record per line)."""
    return "\n".join(json.dumps(record.to_dict()) for record in store.all_records())


def loads(text: str) -> EventStore:
    """Rebuild a store from JSON-lines text.

    Raises :class:`AssertionQueryError` on malformed lines — a corrupt
    log dump should fail loudly, not produce silently-wrong assertion
    results.
    """
    store = EventStore()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            store.append(ObservationRecord(**doc))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise AssertionQueryError(
                f"malformed observation log at line {line_number}: {exc}"
            ) from exc
    return store


def dump_jsonl(store: EventStore, path: _t.Union[str, "_t.Any"]) -> int:
    """Write the store to ``path``; returns the number of records."""
    text = dumps(store)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if text:
            handle.write("\n")
    return len(store)


def load_jsonl(path: _t.Union[str, "_t.Any"]) -> EventStore:
    """Read a store back from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
