"""Query DSL for the event store.

The paper stores agent logs in Elasticsearch and implements
``GetRequests``/``GetReplies`` as queries against it.  This module is
the corresponding query surface for our in-process store: field
equality filters, request-ID glob patterns, and time ranges, composed
into an immutable :class:`Query`.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import re
import typing as _t

from repro.errors import AssertionQueryError
from repro.logstore.record import ObservationKind, ObservationRecord

__all__ = ["Query", "compile_id_pattern", "exact_id_pattern"]


def exact_id_pattern(pattern: str | None) -> _t.Optional[str]:
    """The single literal request ID ``pattern`` can match, or ``None``.

    Patterns free of glob metacharacters (and not ``re:`` regexes)
    match exactly one ID; the store exploits this to answer
    point-lookups like ``repro trace <request-id>`` from its request-ID
    index instead of post-filtering a scan.

    >>> exact_id_pattern("test-17")
    'test-17'
    >>> exact_id_pattern("test-*") is None
    True
    """
    if pattern is None or pattern.startswith("re:"):
        return None
    if any(ch in pattern for ch in "*?["):
        return None
    return pattern


def compile_id_pattern(pattern: str | None) -> _t.Optional[re.Pattern]:
    """Compile a request-ID glob (``"test-*"``) to a regex, or None.

    Globs match the paper's rule examples; full regexes are accepted
    too when the pattern is wrapped as ``re:<regex>``.
    """
    if pattern is None or pattern == "*":
        return None
    if pattern.startswith("re:"):
        try:
            return re.compile(pattern[3:])
        except re.error as exc:
            raise AssertionQueryError(f"bad regex pattern {pattern!r}: {exc}") from exc
    return re.compile(fnmatch.translate(pattern))


@dataclasses.dataclass(frozen=True)
class Query:
    """An immutable filter over observation records.

    All constraints are conjunctive.  ``None`` means "no constraint".

    ``id_pattern`` is a glob over the request ID (or ``re:`` regex).
    ``since``/``until`` bound the record timestamp inclusively.
    """

    kind: _t.Optional[str] = None
    src: _t.Optional[str] = None
    dst: _t.Optional[str] = None
    id_pattern: _t.Optional[str] = None
    since: _t.Optional[float] = None
    until: _t.Optional[float] = None
    status: _t.Optional[int] = None
    with_faults_only: bool = False

    def __post_init__(self) -> None:
        if self.kind is not None and self.kind not in ObservationKind.ALL:
            raise AssertionQueryError(
                f"kind must be one of {ObservationKind.ALL}, got {self.kind!r}"
            )
        if self.since is not None and self.until is not None and self.since > self.until:
            raise AssertionQueryError(f"empty time range: since={self.since} > until={self.until}")
        # Validate the pattern eagerly so malformed queries fail fast,
        # and cache the compiled regex: the predicate runs once per
        # record and must not pay a compile per call.  (object.__setattr__
        # because the dataclass is frozen.)
        object.__setattr__(self, "_id_regex", compile_id_pattern(self.id_pattern))
        object.__setattr__(self, "predicate", self._compile_predicate())

    def _compile_predicate(self) -> _t.Callable[[ObservationRecord], bool]:
        """Bind the constraints into a closure over locals.

        The store evaluates the predicate once per candidate record;
        capturing the bound values here avoids eight ``self`` attribute
        lookups per call on that hot path.
        """
        kind, src, dst = self.kind, self.src, self.dst
        status, since, until = self.status, self.since, self.until
        faults_only = self.with_faults_only
        regex: _t.Optional[re.Pattern] = self._id_regex  # type: ignore[attr-defined]

        def predicate(record: ObservationRecord) -> bool:
            if kind is not None and record.kind != kind:
                return False
            if src is not None and record.src != src:
                return False
            if dst is not None and record.dst != dst:
                return False
            if status is not None and record.status != status:
                return False
            if since is not None and record.timestamp < since:
                return False
            if until is not None and record.timestamp > until:
                return False
            if faults_only and record.fault_applied is None:
                return False
            if regex is not None:
                if record.request_id is None or not regex.match(record.request_id):
                    return False
            return True

        return predicate

    def matches(self, record: ObservationRecord) -> bool:
        """True if ``record`` satisfies every constraint."""
        return self.predicate(record)

    # -- fluent refinement --------------------------------------------------

    def replace(self, **changes: _t.Any) -> "Query":
        """A copy of this query with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def requests(self) -> "Query":
        """Restrict to request-direction records."""
        return self.replace(kind=ObservationKind.REQUEST)

    def replies(self) -> "Query":
        """Restrict to reply-direction records."""
        return self.replace(kind=ObservationKind.REPLY)

    def between(self, src: str, dst: str) -> "Query":
        """Restrict to one caller/callee service pair."""
        return self.replace(src=src, dst=dst)

    def in_window(self, since: float | None, until: float | None) -> "Query":
        """Restrict to a closed time window."""
        return self.replace(since=since, until=until)
