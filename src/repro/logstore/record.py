"""The observation-record schema shared by agents and the checker.

Paper Section 4.1 lists what each Gremlin agent records about an API
call: the message timestamp and request ID, parts of the message
(status codes, request URI), and the fault actions applied, if any.
:class:`ObservationRecord` carries exactly that, plus the bookkeeping
fields (``injected_delay``, ``gremlin_generated``) needed to implement
the ``withRule`` accounting of the assertion interface (Table 3).
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["ObservationKind", "ObservationRecord"]

#: Outcome fields the agent mutates in place after ingestion *and* the
#: store indexes.  Assignments to these notify the owning store so its
#: secondary indexes can follow the update (the in-process analogue of
#: an Elasticsearch document update re-indexing the changed fields).
#: Identity fields (kind, src, dst, timestamp, request_id) are treated
#: as immutable once a record is stored.
_INDEXED_MUTABLE_FIELDS = frozenset({"status", "fault_applied"})


class ObservationKind:
    """Enumeration of the two observable message directions."""

    REQUEST = "request"
    REPLY = "reply"

    ALL = (REQUEST, REPLY)


@dataclasses.dataclass
class ObservationRecord:
    """One logged observation of a message at a Gremlin agent.

    Records are *mutable*: the agent emits a request record the moment
    the call leaves the caller, then updates its ``status``/``error``
    in place once the outcome is known — the in-process analogue of an
    Elasticsearch document update.  This is what lets ``CheckStatus``
    operate on request lists ("check that at least NumMatch requests
    have *returned* status Status", Table 3) without a join.

    Fields
    ------
    timestamp:
        Virtual time at which the agent observed the message (for
        replies: the time the reply was delivered to the caller).
    kind:
        ``"request"`` or ``"reply"``.
    src / dst:
        Logical service names of caller and callee.
    src_instance:
        Physical instance ID of the caller whose sidecar logged this.
    request_id:
        Propagated end-to-end request ID, or ``None`` for untagged
        traffic.
    method / uri:
        Request line parts (also echoed on the reply record).
    status:
        HTTP status code; ``None`` on request records and on replies
        that never materialized (transport error instead).
    latency:
        Reply records only: time from the caller's request leaving the
        agent to the reply being handed back, as the caller observed it
        (i.e. *including* any Gremlin-injected delay).
    injected_delay:
        Delay added by Gremlin rules on this call (0.0 if none); used
        by ``withRule=False`` queries to recover the callee's true
        timing.
    fault_applied:
        Human-readable description of the rule action applied, e.g.
        ``"abort(503)"``, ``"delay(3.0)"``, ``"modify"``, or ``None``.
    gremlin_generated:
        True when the reply was synthesized by the agent itself (an
        Abort) rather than produced by the callee; ``withRule=False``
        reply queries exclude these.
    error:
        Transport-level failure observed instead of an HTTP reply:
        ``"reset"``, ``"timeout"``, ``"refused"``, ``"unreachable"``
        or ``None``.
    span_id:
        Identity of the proxied call this record belongs to, minted by
        the observing agent (one span per request/reply exchange —
        each retry attempt is its own span).  ``None`` for records from
        deployments with tracing disabled.
    parent_span:
        Span ID of the enclosing call, read from the propagated span
        header; ``None`` for root spans (the trace's entry edge) and
        untraced records.  The ``(span_id, parent_span)`` pair is what
        :mod:`repro.observability.trace` rebuilds causal trees from.
    """

    timestamp: float
    kind: str
    src: str
    dst: str
    src_instance: str = ""
    request_id: _t.Optional[str] = None
    method: _t.Optional[str] = None
    uri: _t.Optional[str] = None
    status: _t.Optional[int] = None
    latency: _t.Optional[float] = None
    injected_delay: float = 0.0
    fault_applied: _t.Optional[str] = None
    gremlin_generated: bool = False
    error: _t.Optional[str] = None
    span_id: _t.Optional[str] = None
    parent_span: _t.Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ObservationKind.ALL:
            raise ValueError(f"kind must be one of {ObservationKind.ALL}, got {self.kind!r}")

    def __setattr__(self, name: str, value: _t.Any) -> None:
        # Stores install ``_index_hook`` (a plain __dict__ entry, not a
        # dataclass field) at ingest time; updates to indexed mutable
        # fields flow through it so posting lists stay a superset of
        # the truth.  Unhooked records (not yet stored, or owned by a
        # linear-strategy store) pay only the membership test.
        if name in _INDEXED_MUTABLE_FIELDS:
            hook = self.__dict__.get("_index_hook")
            if hook is not None and value != self.__dict__.get(name):
                hook(self, name, value)
        object.__setattr__(self, name, value)

    @property
    def is_request(self) -> bool:
        """True for request-direction observations."""
        return self.kind == ObservationKind.REQUEST

    @property
    def is_reply(self) -> bool:
        """True for reply-direction observations."""
        return self.kind == ObservationKind.REPLY

    @property
    def actual_latency(self) -> _t.Optional[float]:
        """Reply latency with Gremlin's injected delay factored out.

        This is what ``ReplyLatency(..., withRule=False)`` reports: the
        callee's untampered behaviour during multi-fault experiments.
        """
        if self.latency is None:
            return None
        return max(0.0, self.latency - self.injected_delay)

    def to_dict(self) -> dict:
        """Plain-dict form, e.g. for JSON-lines export."""
        return dataclasses.asdict(self)
