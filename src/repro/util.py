"""Small shared utilities.

Currently: human-friendly duration parsing.  The paper's recipes write
intervals as strings — ``Delay(..., Interval='100ms')``,
``AtMostRequests(RList, '1min', ...)``, ``Delay(..., Interval='1h')`` —
so both the rule layer and the assertion layer accept the same syntax.
"""

from __future__ import annotations

import re
import typing as _t

__all__ = ["parse_duration", "format_duration"]

_DURATION_RE = re.compile(r"^\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>us|ms|s|sec|min|m|h|hr)?\s*$")

_UNIT_SECONDS = {
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    None: 1.0,  # bare numbers are seconds
}


def parse_duration(value: _t.Union[str, int, float]) -> float:
    """Convert ``'100ms'`` / ``'1min'`` / ``'1h'`` / ``2.5`` to seconds.

    >>> parse_duration('100ms')
    0.1
    >>> parse_duration('1min')
    60.0
    >>> parse_duration(3)
    3.0
    """
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        match = _DURATION_RE.match(value)
        if match is None:
            raise ValueError(f"unparseable duration {value!r} (try '100ms', '1min', '1h')")
        result = float(match.group("value")) * _UNIT_SECONDS[match.group("unit")]
    if result < 0:
        raise ValueError(f"duration must be >= 0, got {result}")
    return result


def format_duration(seconds: float) -> str:
    """Render seconds compactly: 0.1 -> ``'100ms'``, 90 -> ``'1.5min'``."""
    if seconds >= 3600:
        return f"{seconds / 3600:g}h"
    if seconds >= 60:
        return f"{seconds / 60:g}min"
    if seconds >= 1:
        return f"{seconds:g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:g}ms"
    return f"{seconds * 1e6:g}us"
