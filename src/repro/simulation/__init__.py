"""Deterministic discrete-event simulation kernel.

This package is the substrate everything else in the reproduction runs
on: a virtual clock, one-shot events, generator-based processes, and
the two synchronization resources (channels, semaphores) used by the
network transport and the resilience patterns.

See :class:`repro.simulation.Simulator` for the entry point.
"""

from repro.simulation.events import AllOf, AnyOf, Condition, SimEvent, Timeout
from repro.simulation.kernel import Simulator
from repro.simulation.process import Interrupt, Process
from repro.simulation.resources import Channel, ChannelClosed, Semaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "Condition",
    "Interrupt",
    "Process",
    "Semaphore",
    "SimEvent",
    "Simulator",
    "Timeout",
]
