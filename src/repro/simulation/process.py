"""Generator-based processes for the simulation kernel.

A *process* is a Python generator that ``yield``-s events; the kernel
resumes it when the yielded event triggers.  Successful events resume
the generator with ``event.value``; failed events throw the exception
into the generator at the ``yield`` site, so ordinary ``try/except``
implements failure handling exactly as it would in real service code.

Processes are themselves events: they trigger when the generator
returns (success, carrying the return value) or raises (failure).  This
lets one process wait for another, and lets tests join on completion.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ProcessKilled, SimulationError
from repro.simulation.events import PENDING, SimEvent

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.kernel import Simulator

__all__ = ["Interrupt", "Process"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process
    was interrupted (e.g. ``"deadline"``).  The interrupted process may
    catch the exception and continue, mirroring how a real thread
    handles cancellation.
    """

    def __init__(self, cause: _t.Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> _t.Any:
        """The payload passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Process(SimEvent):
    """Wraps a generator and steps it through the event loop.

    Created via :meth:`repro.simulation.kernel.Simulator.process`; user
    code rarely instantiates this directly.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: _t.Generator, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if ready).
        self._waiting_on: SimEvent | None = None
        # One bound method for the process's whole life: re-registering
        # after every yield would otherwise allocate a fresh method
        # object per resume, and resumes are the hottest path there is.
        resume = self._resume_cb = self._resume
        # Kick off the process at the current simulation time.  The
        # bootstrap event is deliberately not stored on the process: once
        # its callback has run nothing references it, so the kernel's
        # free list can recycle it.
        bootstrap = sim.event()
        bootstrap.add_callback(resume)
        bootstrap.succeed()

    # -- public API -------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process raises :class:`SimulationError`;
        interrupting a process that is not currently waiting (it is
        scheduled to resume this instant) is delivered on resume.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            # Detach from the event we were waiting on; its eventual
            # trigger must no longer resume us.
            if waiting_on.callbacks is not None and self._resume_cb in waiting_on.callbacks:
                waiting_on.callbacks.remove(self._resume_cb)
            self._waiting_on = None
        # Deliver the interrupt through a dedicated immediate event.
        interrupt_ev = self.sim.event()
        interrupt_ev.add_callback(self._deliver_interrupt)
        interrupt_ev.defused = True
        interrupt_ev.fail(Interrupt(cause))

    def kill(self) -> None:
        """Forcibly terminate the process with :class:`ProcessKilled`.

        Unlike :meth:`interrupt`, the process cannot catch this to keep
        running: ``GeneratorExit``-style teardown still executes
        ``finally`` blocks.
        """
        if not self.is_alive:
            return
        waiting_on = self._waiting_on
        if waiting_on is not None and waiting_on.callbacks is not None:
            if self._resume_cb in waiting_on.callbacks:
                waiting_on.callbacks.remove(self._resume_cb)
        self._waiting_on = None
        self.generator.close()
        self.defused = True
        if self._value is PENDING:
            self.fail(ProcessKilled(f"process {self.name!r} killed"))
            self.defused = True

    # -- kernel plumbing ----------------------------------------------------

    def _deliver_interrupt(self, ev: SimEvent) -> None:
        if not self.is_alive:  # finished in the meantime
            return
        # The interrupt event is always failed, so _resume throws it.
        self._resume(ev)

    def _resume(self, ev: SimEvent) -> None:
        """Advance the generator by one yield (the kernel callback).

        This is the single hottest function in the simulator — every
        event an alive process waits on lands here — so the old
        ``_resume`` -> ``_step`` call pair is collapsed into one frame
        and the tail re-registration inlines ``add_callback``.
        """
        self._waiting_on = None
        try:
            if ev._ok:
                target = self.generator.send(ev._value)
            else:
                ev.defused = True
                target = self.generator.throw(ev._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Interrupt escaped the generator: treat as failure.
            self.fail(exc)
            return
        except Exception as exc:  # noqa: BLE001 - process crashed
            self.fail(exc)
            return
        if not isinstance(target, SimEvent):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield SimEvent"
            )
            self.generator.close()
            self.fail(error)
            return
        if target.sim is not self.sim:
            error = SimulationError(
                f"process {self.name!r} yielded an event from a different Simulator"
            )
            self.generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:  # already processed: resume immediately
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name!r} {state}>"
