"""Event primitives for the discrete-event simulation kernel.

The kernel is modelled after classic discrete-event simulators (and will
look familiar to SimPy users) but is implemented from scratch so the
whole reproduction is self-contained.  An :class:`SimEvent` is a one-shot
occurrence that processes may wait on; it is *triggered* exactly once,
either successfully (``succeed``) carrying a value, or unsuccessfully
(``fail``) carrying an exception.  Composite conditions
(:class:`AnyOf` / :class:`AllOf`) let a process race a response against
a timeout — the building block of the timeout resilience pattern.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush as _heappush

from repro.errors import StaleEventError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.kernel import Simulator

__all__ = [
    "PENDING",
    "SimEvent",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
]


class _Pending:
    """Sentinel for an event that has not been triggered yet."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()


class SimEvent:
    """A one-shot occurrence inside a :class:`~repro.simulation.kernel.Simulator`.

    Lifecycle::

        ev = sim.event()      # not triggered
        ev.succeed(value)     # triggered ok; callbacks scheduled
        # or
        ev.fail(exc)          # triggered with failure

    Processes wait on events by ``yield``-ing them; the kernel registers
    a resume callback.  Failed events throw their exception into every
    waiting process.  An event whose failure is never consumed is
    recorded by the kernel (``sim.unhandled_failures``) rather than
    silently dropped, so tests can assert that no error went unnoticed.
    """

    # Events are the kernel's unit of allocation — a busy campaign makes
    # millions — so the whole hierarchy is slotted: no per-instance
    # __dict__, smaller objects, faster attribute access in the run loop.
    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[_t.Callable[["SimEvent"], None]] | None = []
        self._value: _t.Any = PENDING
        self._ok: bool | None = None
        #: Set True once some process (or condition) consumed a failure.
        self.defused = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise StaleEventError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The success value or failure exception. Only valid once triggered."""
        if self._value is PENDING:
            raise StaleEventError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: _t.Any = None) -> "SimEvent":
        """Trigger the event successfully with ``value``.

        Returns the event itself so call sites can do
        ``return ev.succeed(x)``.
        """
        if self._value is not PENDING:
            raise StaleEventError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Triggering is a per-event cost on the request hot path, so both
        # scheduler lanes are inlined.  Calendar lane: an event triggered
        # while its timestamp's batch is draining joins that live batch
        # directly — no heap traffic at all.
        sim = self.sim
        if sim._calendar:
            batch = sim._now_batch
            if batch is not None:
                batch.append(self)
            else:
                sim._queue_triggered(self)
        else:
            _heappush(sim._heap, (sim._now, next(sim._counter), self))
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self._value is not PENDING:
            raise StaleEventError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        if sim._calendar:
            batch = sim._now_batch
            if batch is not None:
                batch.append(self)
            else:
                sim._queue_triggered(self)
        else:
            _heappush(sim._heap, (sim._now, next(sim._counter), self))
        return self

    def add_callback(self, callback: _t.Callable[["SimEvent"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else f"failed({self._value!r})"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(SimEvent):
    """An event that succeeds automatically after ``delay`` virtual time.

    ``yield sim.timeout(3.0)`` suspends the current process for three
    units of virtual time.  A negative delay is rejected.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        # Inlined SimEvent.__init__ and Simulator._schedule_at: timeouts
        # are the most-allocated event type (every injected delay, retry
        # backoff, and client budget makes one), and a non-negative delay
        # can never land in the past, so the scheduling guard is skipped.
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self.delay = delay
        if sim._calendar:
            when = sim._now + delay
            buckets = sim._buckets
            bucket = buckets.get(when)
            if bucket is not None:
                bucket.append(self)
            elif when <= sim._horizon:
                buckets[when] = [self]
                _heappush(sim._times, when)
            else:
                _heappush(sim._overflow, (when, next(sim._counter), self))
        else:
            _heappush(sim._heap, (sim._now + delay, next(sim._counter), self))

    def succeed(self, value: _t.Any = None) -> "SimEvent":  # pragma: no cover
        raise StaleEventError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "SimEvent":  # pragma: no cover
        raise StaleEventError("Timeout events trigger themselves")


class Condition(SimEvent):
    """Base for composite events over a list of child events.

    A condition evaluates a predicate over how many children have
    triggered successfully.  If any child *fails* before the condition
    triggers, the condition fails with that child's exception (and the
    child is marked ``defused`` so the kernel does not also report an
    unhandled failure).
    """

    __slots__ = ("events", "_evaluate", "_count")

    def __init__(
        self,
        sim: "Simulator",
        events: _t.Sequence[SimEvent],
        evaluate: _t.Callable[[int, int], bool],
    ) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self.events:
            # Degenerate condition triggers immediately.
            self._ok = True
            self._value = {}
            sim._schedule_at(sim.now, self)
            return
        check = self._check
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share one Simulator")
            # Inlined add_callback: conditions are built on the request
            # hot path (every timeout race makes one).
            callbacks = ev.callbacks
            if callbacks is None:
                check(ev)
            else:
                callbacks.append(check)

    def _check(self, ev: SimEvent) -> None:
        if self._value is not PENDING:
            if not ev._ok:
                # Condition already resolved; swallow late failures of
                # the losing branches (e.g. a timeout raced and lost).
                ev.defused = True
            return
        if not ev._ok:
            ev.defused = True
            self.fail(ev._value)
            return
        self._count += 1
        if self._evaluate(len(self.events), self._count):
            self.succeed(self._collect_values())

    def _collect_values(self) -> dict[SimEvent, _t.Any]:
        """Map each already-*processed* successful child to its value.

        ``processed`` (not merely ``triggered``) is the right test:
        Timeout events carry their value from construction, but they
        have not *occurred* until the kernel runs their callbacks.
        """
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}


def _any_done(total: int, done: int) -> bool:
    return done >= 1


def _all_done(total: int, done: int) -> bool:
    return done >= total


class AnyOf(Condition):
    """Triggers as soon as *one* child event succeeds.

    The canonical use is racing a response against a timeout::

        result = yield AnyOf(sim, [response_ev, sim.timeout(budget)])
        if response_ev in result:
            ...                      # response won
        else:
            ...                      # timed out
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: _t.Sequence[SimEvent]) -> None:
        # Flattened Condition/SimEvent init: conditions are built on the
        # request hot path (every timeout race makes one), and the
        # three-deep super() chain showed up in profiles.
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False
        self.events = evs = list(events)
        self._evaluate = _any_done
        self._count = 0
        if not evs:
            self._ok = True
            self._value = {}
            sim._schedule_at(sim.now, self)
            return
        check = self._check
        for ev in evs:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share one Simulator")
            callbacks = ev.callbacks
            if callbacks is None:
                check(ev)
            else:
                callbacks.append(check)

    def _check(self, ev: SimEvent) -> None:
        # Specialized: triggers on the first success, collecting values
        # with direct slot access (``callbacks is None`` == processed).
        if self._value is not PENDING:
            if not ev._ok:
                ev.defused = True
            return
        if not ev._ok:
            ev.defused = True
            self.fail(ev._value)
            return
        self._count += 1
        self.succeed(
            {e: e._value for e in self.events if e.callbacks is None and e._ok}
        )


class AllOf(Condition):
    """Triggers when *all* child events have succeeded.

    Useful for fan-out handlers that call several downstream services
    concurrently and join on all the responses.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: _t.Sequence[SimEvent]) -> None:
        # Flattened like AnyOf.__init__; see the comment there.
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False
        self.events = evs = list(events)
        self._evaluate = _all_done
        self._count = 0
        if not evs:
            self._ok = True
            self._value = {}
            sim._schedule_at(sim.now, self)
            return
        check = self._check
        for ev in evs:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share one Simulator")
            callbacks = ev.callbacks
            if callbacks is None:
                check(ev)
            else:
                callbacks.append(check)

    def _check(self, ev: SimEvent) -> None:
        # Specialized mirror of AnyOf._check for the join-on-all case.
        if self._value is not PENDING:
            if not ev._ok:
                ev.defused = True
            return
        if not ev._ok:
            ev.defused = True
            self.fail(ev._value)
            return
        self._count += 1
        if self._count >= len(self.events):
            self.succeed(
                {e: e._value for e in self.events if e.callbacks is None and e._ok}
            )
