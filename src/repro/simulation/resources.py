"""Synchronization resources built on the simulation kernel.

Two resources cover everything the substrates need:

* :class:`Channel` — an unbounded FIFO of items with blocking ``get``;
  the building block of network connections and message buses.
* :class:`Semaphore` — counted permits with blocking and non-blocking
  acquire; the building block of thread pools and the bulkhead
  resilience pattern (a bulkhead *is* a per-dependency semaphore).
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.simulation.events import SimEvent
from repro.simulation.kernel import Simulator

__all__ = ["Channel", "ChannelClosed", "Semaphore"]


class ChannelClosed(Exception):
    """Raised into getters when the channel is closed and drained.

    A closed channel models a torn-down connection: pending items may
    still be consumed, after which waiting getters fail.
    """


class Channel:
    """Unbounded FIFO channel with event-based blocking ``get``.

    ``put`` never blocks (links apply backpressure through latency, not
    queue limits — adequate for the paper's fault model).  ``get``
    returns a :class:`SimEvent` the caller yields on.
    """

    def __init__(self, sim: Simulator, name: str = "channel") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[_t.Any] = deque()
        self._getters: deque[SimEvent] = deque()
        self._closed = False
        self._close_reason: Exception | None = None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: _t.Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._closed:
            raise ChannelClosed(f"cannot put into closed channel {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Return an event yielding the next item (or failing on close)."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed:
            ev.fail(self._close_exception())
        else:
            self._getters.append(ev)
        return ev

    def close(self, reason: Exception | None = None) -> None:
        """Close the channel; all waiting getters fail immediately.

        ``reason`` (if given) is the exception delivered to getters,
        letting a connection reset surface as ``ConnectionResetError_``
        rather than a generic :class:`ChannelClosed`.
        """
        if self._closed:
            return
        self._closed = True
        self._close_reason = reason
        while self._getters:
            self._getters.popleft().fail(self._close_exception())

    def _close_exception(self) -> Exception:
        if self._close_reason is not None:
            return self._close_reason
        return ChannelClosed(f"channel {self.name!r} closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Channel {self.name!r} {state} items={len(self._items)}>"


class Semaphore:
    """Counted permits with FIFO blocking acquire.

    Used for service worker pools and for the bulkhead pattern, where a
    dependency gets a bounded number of concurrent in-flight calls and
    excess callers are rejected (``try_acquire``) instead of queued.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "semaphore") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters: deque[SimEvent] = deque()

    @property
    def available(self) -> int:
        """Number of free permits right now."""
        return self._available

    @property
    def in_use(self) -> int:
        """Number of permits currently held."""
        return self.capacity - self._available

    @property
    def queued(self) -> int:
        """Number of blocked acquirers waiting for a permit."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Return an event that succeeds once a permit is granted."""
        ev = self.sim.event()
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take a permit without blocking; False if none available.

        This is the bulkhead behaviour: when the pool for a slow
        dependency is exhausted, new calls are rejected immediately so
        the caller's resources are not dragged down with it.
        """
        if self._available > 0:
            self._available -= 1
            return True
        return False

    def release(self) -> None:
        """Return a permit, waking the oldest blocked acquirer if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
            return
        if self._available >= self.capacity:
            raise ValueError(f"semaphore {self.name!r} released more than acquired")
        self._available += 1

    def __repr__(self) -> str:
        return (
            f"<Semaphore {self.name!r} {self._available}/{self.capacity} free"
            f" queued={len(self._waiters)}>"
        )
