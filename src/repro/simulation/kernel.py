"""The discrete-event simulator: virtual clock, event scheduler, run loop.

Why a simulator at all?  The paper staged failures against live Docker
deployments and measured multi-second behaviours (e.g. a 4 s injected
delay, a one-hour ``Hang``).  Re-running those on a laptop in wall-clock
time would be slow and non-deterministic.  Everything that is *timing
logic* — injected delays, client timeouts, retry backoff, breaker
recovery windows — runs here on a virtual clock instead, so a scenario
spanning hours of virtual time executes in milliseconds and every run
is bit-for-bit reproducible from its seed.

Scheduler
---------
Two interchangeable schedulers implement the same total order
``(timestamp, schedule sequence)``:

* ``"calendar"`` (default) — a bucketed calendar queue specialized for
  the timeout-dominated regime.  Events scheduled at the same virtual
  timestamp share one *bucket* (a plain list, appended in schedule
  order) and drain as a batch, so the heap pays one push/pop per
  **distinct timestamp** instead of one per event; events triggered at
  the current instant (``succeed``/``fail`` during a batch) append to
  the live batch and never touch a heap at all.  Timestamps beyond a
  sliding horizon land in an **overflow lane** — the classic binary
  heap, keyed ``(when, seq)`` — and migrate into buckets as the clock
  approaches, so far-future work (an hour-long ``Hang``) cannot bloat
  the bucket table.  The calendar scheduler also pools processed
  ``Timeout``/``SimEvent`` objects on free lists (see ``timeout()``).

* ``"heap"`` — the single binary heap the kernel used before the
  calendar queue, kept verbatim as the reference lane.  The
  scheduler-equivalence suite (tests/simulation/
  test_scheduler_equivalence.py) pins both to bit-for-bit identical
  event order, RNG draws, and outcomes.

Both break same-timestamp ties by a monotonic sequence: the heap lane
stores an explicit counter, the calendar lane relies on buckets being
appended in schedule order (which is the same total order, since the
counter increments exactly once per schedule).

The two wall-clock benchmarks of the paper (orchestration time, Fig 7;
rule-matching overhead, Fig 8) do *not* use virtual time: they measure
the real execution cost of our control-plane and matcher code.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random as _random
import sys
import typing as _t

from repro.errors import SimulationError
from repro.simulation.events import PENDING as _PENDING
from repro.simulation.events import AllOf, AnyOf, SimEvent, Timeout
from repro.simulation.process import Process

__all__ = ["SCHEDULERS", "DEFAULT_SCHEDULER", "Simulator"]

#: The interchangeable scheduler implementations.
SCHEDULERS = ("calendar", "heap")

#: Process-wide default, overridable for CI equivalence smokes without
#: threading a parameter through every deployment factory.
DEFAULT_SCHEDULER = os.environ.get("REPRO_SCHEDULER", "calendar")

#: How far past ``now`` (virtual seconds) the bucket table reaches;
#: later timestamps wait in the overflow heap until the clock nears.
CALENDAR_HORIZON = 256.0

#: Free lists are capped so a pathological burst cannot pin memory.
_POOL_MAX = 4096

# Free-list recycling is guarded by an exact reference count: an event
# is recycled only when the kernel provably holds the last references.
# Only CPython exposes refcounts; elsewhere the pools simply stay empty.
_getrefcount = getattr(sys, "getrefcount", None)


class Simulator:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    seed:
        Master seed.  Each named RNG stream obtained via :meth:`rng`
        derives deterministically from this seed and its name, so adding
        a new randomized component does not perturb existing streams.
    strict:
        When True (default), :meth:`run` raises at the end if any event
        failed and nobody consumed the failure — the simulation
        equivalent of "errors should never pass silently".
    scheduler:
        ``"calendar"`` (default) or ``"heap"``; see the module
        docstring.  Outcomes are bit-for-bit identical either way.
    horizon:
        Calendar-lane reach in virtual seconds; timestamps further out
        wait in the overflow heap.  Ignored by the heap scheduler.

    Example
    -------
    ::

        sim = Simulator(seed=42)

        def hello(sim):
            yield sim.timeout(3.0)
            return "done at %.1f" % sim.now

        proc = sim.process(hello(sim))
        sim.run()
        assert proc.value == "done at 3.0"
    """

    #: Events check this to pick the scheduling fast path without a
    #: method call; the heap subclass flips it.
    _calendar = True

    def __new__(
        cls,
        seed: int = 0,
        strict: bool = True,
        scheduler: _t.Optional[str] = None,
        horizon: float = CALENDAR_HORIZON,
    ) -> "Simulator":
        chosen = DEFAULT_SCHEDULER if scheduler is None else scheduler
        if chosen not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {chosen!r}; expected one of {SCHEDULERS}"
            )
        if cls is Simulator and chosen == "heap":
            return super().__new__(_HeapSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        seed: int = 0,
        strict: bool = True,
        scheduler: _t.Optional[str] = None,
        horizon: float = CALENDAR_HORIZON,
    ) -> None:
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        # Shadow the class attribute so the per-trigger branch in
        # events.py is a single instance-dict hit.
        self._calendar = type(self)._calendar
        self._now = 0.0
        self._seed = seed
        self._strict = strict
        self._counter = itertools.count()
        self._rngs: dict[str, _random.Random] = {}
        #: Failures that no process consumed; populated as they are seen.
        self.unhandled_failures: list[SimEvent] = []
        # -- calendar lanes --------------------------------------------------
        #: timestamp -> events at that instant, in schedule order.
        self._buckets: dict[float, list[SimEvent]] = {}
        #: Min-heap of live bucket timestamps (one entry per bucket).
        self._times: list[float] = []
        #: Far-future lane: classic ``(when, seq, event)`` heap.
        self._overflow: list[tuple[float, int, SimEvent]] = []
        self._span = horizon
        self._horizon = self._now + horizon
        #: The bucket currently draining (events triggered *now* append
        #: straight to it); None between batches.
        self._now_batch: list[SimEvent] | None = None
        #: Events of ``_now_batch`` already processed (only maintained
        #: by :meth:`step`; :meth:`run` drains whole batches).
        self._batch_pos = 0
        # -- free lists ------------------------------------------------------
        self._pooling = _getrefcount is not None
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[SimEvent] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (arbitrary units; we use seconds)."""
        return self._now

    @property
    def seed(self) -> int:
        """The master seed this simulator was created with."""
        return self._seed

    @property
    def scheduler(self) -> str:
        """Which scheduler implementation this simulator runs on."""
        return "calendar" if self._calendar else "heap"

    # -- randomness ------------------------------------------------------------

    def rng(self, stream: str) -> _random.Random:
        """Return the named deterministic RNG stream.

        Separate components (e.g. each fault rule's probability draw,
        each latency model) should use separate stream names so their
        draws do not interleave and perturb one another across runs.
        """
        if stream not in self._rngs:
            self._rngs[stream] = _random.Random(f"{self._seed}/{stream}")
        return self._rngs[stream]

    # -- event construction ----------------------------------------------------

    def event(self) -> SimEvent:
        """Create a fresh, untriggered event bound to this simulator.

        Recycles a pooled instance when one is free: the run loop
        returns processed events to a free list once it proves (by
        exact reference count) that nothing else can still see them.
        """
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._ok = None
            ev._value = _PENDING
            ev.defused = False
            return ev
        return SimEvent(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now.

        Timeouts are the kernel's unit of allocation churn (every
        injected delay, retry backoff, and client budget makes one), so
        this is the pooled fast path; see :meth:`event`.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"timeout delay must be >= 0, got {delay}")
            ev = pool.pop()
            ev._ok = True
            ev._value = value
            ev.defused = False
            ev.delay = delay
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is not None:
                bucket.append(ev)
            elif when <= self._horizon:
                buckets[when] = [ev]
                heapq.heappush(self._times, when)
            else:
                heapq.heappush(self._overflow, (when, next(self._counter), ev))
            return ev
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``; returns the Process."""
        return Process(self, generator, name=name)

    def any_of(self, events: _t.Sequence[SimEvent]) -> AnyOf:
        """Condition that triggers when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: _t.Sequence[SimEvent]) -> AllOf:
        """Condition that triggers when all of ``events`` succeed."""
        return AllOf(self, events)

    # -- scheduling (kernel internal, used by events) -------------------------

    def _schedule_at(self, when: float, event: SimEvent) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now={self._now})"
            )
        buckets = self._buckets
        bucket = buckets.get(when)
        if bucket is not None:
            bucket.append(event)
        elif when <= self._horizon:
            buckets[when] = [event]
            heapq.heappush(self._times, when)
        else:
            heapq.heappush(self._overflow, (when, next(self._counter), event))

    def _queue_triggered(self, event: SimEvent) -> None:
        """Queue an already-triggered event for callback processing now."""
        batch = self._now_batch
        if batch is not None:
            batch.append(event)
        else:
            self._schedule_at(self._now, event)

    def _advance(self, when: float) -> None:
        """Move the clock to ``when`` and pull newly-due overflow events
        into buckets.  Migration happens *before* any callback at
        ``when`` runs, so later same-timestamp appends always land
        after already-scheduled (lower-sequence) overflow events."""
        self._now = when
        horizon = when + self._span
        self._horizon = horizon
        overflow = self._overflow
        if overflow and overflow[0][0] <= horizon:
            buckets = self._buckets
            times = self._times
            while overflow and overflow[0][0] <= horizon:
                owhen, _seq, event = heapq.heappop(overflow)
                bucket = buckets.get(owhen)
                if bucket is not None:
                    bucket.append(event)
                else:
                    buckets[owhen] = [event]
                    heapq.heappush(times, owhen)

    def _next_time(self) -> float:
        """Earliest pending *batch* timestamp (ignores a live batch).

        The bucket invariant makes this one comparison: every bucket
        timestamp is <= the horizon and every overflow timestamp is
        beyond it, so the times-heap minimum wins whenever it exists.
        """
        if self._times:
            return self._times[0]
        if self._overflow:
            return self._overflow[0][0]
        return float("inf")

    # -- run loop -----------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue.

        Semantically identical to one iteration of :meth:`run`'s loop
        (the cross-check suite in tests/simulation/test_step_run_parity
        pins this); pooling is skipped so single-stepped debugging never
        recycles objects under the debugger's feet.
        """
        batch = self._now_batch
        if batch is not None and self._batch_pos < len(batch):
            event = batch[self._batch_pos]
            self._batch_pos += 1
        else:
            if batch is not None:
                del self._buckets[self._now]
                self._now_batch = None
                self._batch_pos = 0
            when = self._next_time()
            if when == float("inf"):
                raise IndexError("step() from an empty schedule")
            self._advance(when)
            heapq.heappop(self._times)
            batch = self._buckets[when]
            self._now_batch = batch
            self._batch_pos = 1
            event = batch[0]
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            self.unhandled_failures.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        batch = self._now_batch
        if batch is not None and self._batch_pos < len(batch):
            return self._now
        return self._next_time()

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains or virtual time ``until``.

        With ``until`` given, the clock is advanced exactly to ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        limit = float("inf") if until is None else until
        # This loop dominates every simulation's profile: lanes, pools,
        # and the failure list are bound to locals, batches drain with
        # the C-level list iterator (which by definition picks up
        # same-timestamp appends made by callbacks mid-drain), and any
        # semantic change here must land in ``step`` too — the two are
        # one algorithm in two shapes.
        buckets = self._buckets
        times = self._times
        overflow = self._overflow
        unhandled = self.unhandled_failures
        pop = heapq.heappop
        refcount = _getrefcount
        pooling = self._pooling
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        batch = self._now_batch
        if batch is not None:
            # Resume a batch left half-drained by step().
            pos = self._batch_pos
            while pos < len(batch):
                event = batch[pos]
                pos += 1
                callbacks = event.callbacks
                event.callbacks = None
                assert callbacks is not None, "event processed twice"
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    unhandled.append(event)
            del buckets[self._now]
            self._now_batch = None
            self._batch_pos = 0
        while True:
            if times:
                when = times[0]
            elif overflow:
                when = overflow[0][0]
            else:
                break
            if when > limit:
                break
            self._advance(when)
            pop(times)  # == when: _advance migrated any earlier overflow
            batch = buckets[when]
            self._now_batch = batch
            for event in batch:
                callbacks = event.callbacks
                event.callbacks = None
                assert callbacks is not None, "event processed twice"
                # The detached list cannot grow mid-iteration (add_callback
                # on a processed event invokes immediately), so the
                # overwhelmingly common single-waiter case skips the
                # iterator.
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if event._ok:
                    # Free-list recycling: an exact refcount of 3 means
                    # the only references left are the batch slot, the
                    # loop variable, and refcount()'s own argument —
                    # nothing outside this frame can ever see the event
                    # again, so it (and its emptied callbacks list) is
                    # safe to reuse.  Subclasses (Process, conditions)
                    # never match the exact type checks.
                    if pooling:
                        cls = event.__class__
                        if cls is Timeout:
                            if (
                                len(timeout_pool) < _POOL_MAX
                                and refcount(event) == 3
                            ):
                                callbacks.clear()
                                event.callbacks = callbacks
                                timeout_pool.append(event)
                        elif (
                            cls is SimEvent
                            and len(event_pool) < _POOL_MAX
                            and refcount(event) == 3
                        ):
                            callbacks.clear()
                            event.callbacks = callbacks
                            event_pool.append(event)
                elif not event.defused:
                    unhandled.append(event)
            del buckets[when]
            self._now_batch = None
        if until is not None:
            self._now = max(self._now, until)
        if self._strict and self.unhandled_failures:
            failures = ", ".join(repr(ev.value) for ev in self.unhandled_failures[:5])
            raise SimulationError(
                f"{len(self.unhandled_failures)} unhandled event failure(s): {failures}"
            )

    def _pending(self) -> int:
        pending = sum(len(bucket) for bucket in self._buckets.values())
        pending += len(self._overflow)
        if self._now_batch is not None:
            pending -= self._batch_pos
        return pending

    def __repr__(self) -> str:
        return f"<Simulator now={self._now:.6f} pending={self._pending()}>"


class _HeapSimulator(Simulator):
    """The pre-calendar scheduler, verbatim: one binary heap ordered by
    ``(timestamp, sequence)``.

    Kept as the reference implementation the equivalence suite compares
    the calendar queue against; request it with
    ``Simulator(scheduler="heap")`` or ``REPRO_SCHEDULER=heap``.  No
    free-list pooling — this lane optimizes for being obviously correct.
    """

    _calendar = False

    def __init__(
        self,
        seed: int = 0,
        strict: bool = True,
        scheduler: _t.Optional[str] = None,
        horizon: float = CALENDAR_HORIZON,
    ) -> None:
        super().__init__(seed, strict, scheduler="heap", horizon=horizon)
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._pooling = False

    def _schedule_at(self, when: float, event: SimEvent) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now={self._now})"
            )
        heapq.heappush(self._heap, (when, next(self._counter), event))

    def _queue_triggered(self, event: SimEvent) -> None:
        heapq.heappush(self._heap, (self._now, next(self._counter), event))

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            self.unhandled_failures.append(event)

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | None = None) -> None:
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        heap = self._heap
        pop = heapq.heappop
        unhandled = self.unhandled_failures
        limit = float("inf") if until is None else until
        while heap:
            if heap[0][0] > limit:
                break
            when, _seq, event = pop(heap)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            assert callbacks is not None, "event processed twice"
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                unhandled.append(event)
        if until is not None:
            self._now = max(self._now, until)
        if self._strict and self.unhandled_failures:
            failures = ", ".join(repr(ev.value) for ev in self.unhandled_failures[:5])
            raise SimulationError(
                f"{len(self.unhandled_failures)} unhandled event failure(s): {failures}"
            )

    def _pending(self) -> int:
        return len(self._heap)
