"""The discrete-event simulator: virtual clock, event heap, run loop.

Why a simulator at all?  The paper staged failures against live Docker
deployments and measured multi-second behaviours (e.g. a 4 s injected
delay, a one-hour ``Hang``).  Re-running those on a laptop in wall-clock
time would be slow and non-deterministic.  Everything that is *timing
logic* — injected delays, client timeouts, retry backoff, breaker
recovery windows — runs here on a virtual clock instead, so a scenario
spanning hours of virtual time executes in milliseconds and every run
is bit-for-bit reproducible from its seed.

The two wall-clock benchmarks of the paper (orchestration time, Fig 7;
rule-matching overhead, Fig 8) do *not* use virtual time: they measure
the real execution cost of our control-plane and matcher code.
"""

from __future__ import annotations

import heapq
import itertools
import random as _random
import typing as _t

from repro.errors import SimulationError
from repro.simulation.events import AllOf, AnyOf, SimEvent, Timeout
from repro.simulation.process import Process

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    seed:
        Master seed.  Each named RNG stream obtained via :meth:`rng`
        derives deterministically from this seed and its name, so adding
        a new randomized component does not perturb existing streams.
    strict:
        When True (default), :meth:`run` raises at the end if any event
        failed and nobody consumed the failure — the simulation
        equivalent of "errors should never pass silently".

    Example
    -------
    ::

        sim = Simulator(seed=42)

        def hello(sim):
            yield sim.timeout(3.0)
            return "done at %.1f" % sim.now

        proc = sim.process(hello(sim))
        sim.run()
        assert proc.value == "done at 3.0"
    """

    def __init__(self, seed: int = 0, strict: bool = True) -> None:
        self._now = 0.0
        self._seed = seed
        self._strict = strict
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._counter = itertools.count()
        self._rngs: dict[str, _random.Random] = {}
        self._active_process: Process | None = None
        #: Failures that no process consumed; populated as they are seen.
        self.unhandled_failures: list[SimEvent] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (arbitrary units; we use seconds)."""
        return self._now

    @property
    def seed(self) -> int:
        """The master seed this simulator was created with."""
        return self._seed

    # -- randomness ------------------------------------------------------------

    def rng(self, stream: str) -> _random.Random:
        """Return the named deterministic RNG stream.

        Separate components (e.g. each fault rule's probability draw,
        each latency model) should use separate stream names so their
        draws do not interleave and perturb one another across runs.
        """
        if stream not in self._rngs:
            self._rngs[stream] = _random.Random(f"{self._seed}/{stream}")
        return self._rngs[stream]

    # -- event construction ----------------------------------------------------

    def event(self) -> SimEvent:
        """Create a fresh, untriggered event bound to this simulator."""
        return SimEvent(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``; returns the Process."""
        return Process(self, generator, name=name)

    def any_of(self, events: _t.Sequence[SimEvent]) -> AnyOf:
        """Condition that triggers when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: _t.Sequence[SimEvent]) -> AllOf:
        """Condition that triggers when all of ``events`` succeed."""
        return AllOf(self, events)

    # -- scheduling (kernel internal, used by events) -------------------------

    def _schedule_at(self, when: float, event: SimEvent) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < now={self._now})"
            )
        heapq.heappush(self._heap, (when, next(self._counter), event))

    def _queue_triggered(self, event: SimEvent) -> None:
        """Queue an already-triggered event for callback processing now."""
        heapq.heappush(self._heap, (self._now, next(self._counter), event))

    # -- run loop -----------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue."""
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            self.unhandled_failures.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains or virtual time ``until``.

        With ``until`` given, the clock is advanced exactly to ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        # Inlined :meth:`step`: this loop dominates every simulation's
        # profile, so the heap, the pop, and the failure list are bound
        # to locals and the per-event ``peek``/``step`` calls and
        # ``ok``/``value`` property hops are bypassed.  Any semantic
        # change here must land in ``step`` too — the two are one
        # algorithm in two shapes.
        heap = self._heap
        pop = heapq.heappop
        unhandled = self.unhandled_failures
        limit = float("inf") if until is None else until
        while heap:
            if heap[0][0] > limit:
                break
            when, _seq, event = pop(heap)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            assert callbacks is not None, "event processed twice"
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                unhandled.append(event)
        if until is not None:
            self._now = max(self._now, until)
        if self._strict and self.unhandled_failures:
            failures = ", ".join(repr(ev.value) for ev in self.unhandled_failures[:5])
            raise SimulationError(
                f"{len(self.unhandled_failures)} unhandled event failure(s): {failures}"
            )

    def __repr__(self) -> str:
        return f"<Simulator now={self._now:.6f} pending={len(self._heap)}>"
