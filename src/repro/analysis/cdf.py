"""Empirical CDFs and latency statistics for experiment output.

Figures 5, 6 and 8 of the paper are CDFs of response/matching times;
this module computes them and renders compact text plots so benchmark
runs can show the reproduced curve shapes directly in the terminal.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import AnalysisError

__all__ = ["Cdf", "percentile", "summarize"]


def _checked(samples: _t.Sequence[float], what: str) -> _t.Sequence[float]:
    """Reject sample sets that cannot produce a meaningful statistic.

    Empty input has no percentiles at all, and a single NaN silently
    poisons ``sorted()`` (NaN compares false against everything, so the
    order — and every interpolated value — becomes garbage).  Both are
    caller bugs worth a loud, typed error instead of an IndexError or a
    quietly wrong number.
    """
    if not samples:
        raise AnalysisError(
            f"cannot compute {what} of an empty sample set — "
            "did the experiment window capture any observations?"
        )
    if any(math.isnan(sample) for sample in samples):
        raise AnalysisError(f"cannot compute {what}: sample set contains NaN")
    return samples


def percentile(samples: _t.Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    A single sample is every percentile of itself; empty or
    NaN-containing input raises :class:`AnalysisError`.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    >>> percentile([7.0], 99)
    7.0
    """
    _checked(samples, "percentile")
    if not 0 <= q <= 100:
        raise AnalysisError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    interpolated = ordered[low] * (1 - fraction) + ordered[high] * fraction
    # Clamp out float rounding so the result always lies between the
    # two bracketing samples (and hence inside the sample range).
    return min(max(interpolated, ordered[low]), ordered[high])


class Cdf:
    """An empirical cumulative distribution over float samples."""

    def __init__(self, samples: _t.Sequence[float]) -> None:
        self.samples = sorted(_checked(samples, "a CDF"))

    def __len__(self) -> int:
        return len(self.samples)

    def value_at(self, fraction: float) -> float:
        """Inverse CDF: the sample value at cumulative ``fraction``."""
        return percentile(self.samples, fraction * 100)

    def fraction_below(self, value: float) -> float:
        """CDF: fraction of samples <= ``value``."""
        count = 0
        for sample in self.samples:
            if sample <= value:
                count += 1
            else:
                break
        return count / len(self.samples)

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self.samples[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self.samples[-1]

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.value_at(0.5)

    def points(self, steps: int = 20) -> list[tuple[float, float]]:
        """``steps + 1`` evenly spaced (value, cumulative fraction) pairs."""
        if steps < 1:
            raise AnalysisError(f"CDF needs at least 1 step, got {steps}")
        return [
            (self.value_at(index / steps), index / steps) for index in range(steps + 1)
        ]

    def ascii_plot(self, width: int = 50, label: str = "", unit: str = "s") -> str:
        """A small horizontal text rendering of the CDF, for bench logs."""
        lines = [f"CDF {label} (n={len(self)}, min={self.min:.4g}{unit}, max={self.max:.4g}{unit})"]
        for decile in range(0, 11):
            fraction = decile / 10
            value = self.value_at(fraction)
            span = self.max - self.min
            filled = int(width * ((value - self.min) / span)) if span > 0 else 0
            lines.append(f"  p{decile * 10:>3} {value:>10.4g}{unit} |{'#' * filled}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Cdf n={len(self)} median={self.median:.4g}>"


def summarize(samples: _t.Sequence[float]) -> dict[str, float]:
    """Standard latency summary: min/median/p90/p99/max/mean."""
    _checked(samples, "a latency summary")
    return {
        "n": float(len(samples)),
        "min": min(samples),
        "median": percentile(samples, 50),
        "p90": percentile(samples, 90),
        "p99": percentile(samples, 99),
        "max": max(samples),
        "mean": sum(samples) / len(samples),
    }
