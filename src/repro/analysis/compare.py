"""Statistical comparison of latency distributions.

The paper's figures invite eyeballing two CDFs; this module makes the
comparison quantitative so benchmark shape-assertions have a principled
footing: a two-sample Kolmogorov-Smirnov test says whether two latency
samples plausibly come from the same distribution, and a shift estimate
says by how much one curve sits to the right of the other.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from scipy import stats

from repro.analysis.cdf import percentile

__all__ = ["CdfComparison", "compare_cdfs", "median_shift"]


@dataclasses.dataclass(frozen=True)
class CdfComparison:
    """Result of comparing two latency samples.

    ``ks_statistic`` is the max vertical gap between the two empirical
    CDFs (0 = identical, 1 = disjoint); ``p_value`` the probability of
    a gap at least that large under the same-distribution null
    hypothesis; ``median_shift`` the difference of medians (b - a), the
    natural "how far right did the curve move" summary for injected
    delays.
    """

    ks_statistic: float
    p_value: float
    median_shift: float

    def same_distribution(self, alpha: float = 0.01) -> bool:
        """True when the samples are statistically indistinguishable."""
        return self.p_value >= alpha

    def __str__(self) -> str:
        return (
            f"KS={self.ks_statistic:.3f} p={self.p_value:.4g}"
            f" median-shift={self.median_shift:+.4g}s"
        )


def compare_cdfs(
    sample_a: _t.Sequence[float], sample_b: _t.Sequence[float]
) -> CdfComparison:
    """Two-sample KS test plus median shift (b relative to a)."""
    if not sample_a or not sample_b:
        raise ValueError("both samples must be non-empty")
    result = stats.ks_2samp(list(sample_a), list(sample_b))
    return CdfComparison(
        ks_statistic=float(result.statistic),
        p_value=float(result.pvalue),
        median_shift=percentile(sample_b, 50) - percentile(sample_a, 50),
    )


def median_shift(sample_a: _t.Sequence[float], sample_b: _t.Sequence[float]) -> float:
    """Difference of medians (b - a), without the full KS machinery."""
    return percentile(sample_b, 50) - percentile(sample_a, 50)
