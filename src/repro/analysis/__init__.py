"""Analysis helpers: CDFs, percentiles, distribution comparison, reports."""

from repro.analysis.cdf import Cdf, percentile, summarize
from repro.analysis.compare import CdfComparison, compare_cdfs, median_shift
from repro.analysis.report import text_table

__all__ = [
    "Cdf",
    "CdfComparison",
    "compare_cdfs",
    "median_shift",
    "percentile",
    "summarize",
    "text_table",
]
