"""Plain-text tables for benchmark and experiment reports."""

from __future__ import annotations

import typing as _t

__all__ = ["text_table"]


def text_table(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    >>> print(text_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
