"""Prioritized frontier over the coordinate universe.

The frontier decides *what to try next*.  Scores are "smaller is
sooner" and composed from static structure plus live feedback:

Static priors (computed once from the exploration space):

* **Sweeps before singles** — persistent per-edge faults (the
  FastFI-style seed frontier) screen the whole edge cheaply; surgical
  per-invocation faults refine afterwards.
* **Primitive bands** — all edges get probed with one primitive before
  any edge sees its second: a breadth-first rotation (abort, then
  delay, then reset, then short delay), because two primitives on the
  same edge are far more correlated than one primitive on two edges.
* **Blast radius, then fan-in, then deep-before-shallow** — within a
  band, edges whose fault-free subtree is larger come first (a fault
  there exercises more downstream handling); ties go to edges whose
  caller has more upstream callers (a shared service's failure
  handling repeats per caller) and then to deeper edges (the leaf
  datastore hops, where seeded store bugs live), then enumeration
  order, so the order is total and deterministic.

Live feedback (applied between waves):

* **Coverage boost** — an execution that produced a previously unseen
  trace-shape digest marks its neighborhood interesting: pending
  candidates on the same edge or touching the same callee service move
  earlier within their band.
* **No-effect deferral** — an execution whose shapes were all already
  known (the fault fired invisibly or not at all) defers the rest of
  that edge's candidates within their band.
* **Masking-based pruning** — once a coordinate *confirms* a bug (a
  manifest check conclusively fails), every pending candidate whose
  call-path strictly extends the confirmed coordinate's path is
  removed: a deeper fault's effect propagates to the confirmed edge,
  whose broken failure-handling already surfaces it, so those
  executions cannot add evidence.

Boost and deferral magnitudes are smaller than the band gap: feedback
reorders within a band but never jumps a later primitive ahead of an
unprobed earlier one.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.explore.coords import FAULT_PRIMITIVES, Coordinate, ExplorationSpace

__all__ = ["Frontier"]

#: Score gap between primitive bands (feedback never crosses it).
BAND = 1000.0
#: Singles start this far after all sweep bands.
SINGLE_OFFSET = BAND * len(FAULT_PRIMITIVES)
#: Coverage boost / no-effect deferral magnitudes (within-band only).
BOOST = 300.0
DEFER = 200.0

#: Band order is a *search* choice, deliberately different from the
#: enumeration order of :data:`FAULT_PRIMITIVES`: aborts first (cheap,
#: high-signal), long delays second (they are what trips missing
#: timeouts), load-shed 429s and gray response stalls next (the
#: abort/delay variants manifests opt into), TCP resets after,
#: sub-timeout blips last.
_PRIMITIVE_BAND = {
    "abort": 0,
    "delay": 1,
    "exhaust": 2,
    "gray": 3,
    "reset": 4,
    "delay_short": 5,
}
assert set(_PRIMITIVE_BAND) == set(FAULT_PRIMITIVES)


class Frontier:
    """Deterministic priority queue over pending coordinates."""

    def __init__(self, space: ExplorationSpace) -> None:
        self._edge_rank = self._rank_edges(space)
        self._scores: _t.Dict[str, float] = {}
        self._pending: _t.Dict[str, Coordinate] = {}
        self._heap: _t.List[_t.Tuple[float, int, str]] = []
        self._enum_index: _t.Dict[str, int] = {}
        self.pruned: _t.List[str] = []
        for index, coordinate in enumerate(space.coordinates):
            key = coordinate.key()
            self._enum_index[key] = index
            self._pending[key] = coordinate
            self._scores[key] = self._static_score(coordinate, index)
            heapq.heappush(self._heap, (self._scores[key], index, key))

    @staticmethod
    def _rank_edges(space: ExplorationSpace) -> _t.Dict[_t.Tuple[str, str], int]:
        """Edge -> rank: big blast radius first, then shared-caller
        fan-in, then deep-before-shallow, then discovery order (the DFS
        order of the fault-free tree).

        The fan-in/depth tie-break orders the long tail of span-1 leaf
        edges — which, in the production apps, is mostly datastore
        edges.  Plain shallow-first visited them *last* within every
        band, so seeded store-edge bugs cost almost a full band to
        reach.  Among equal blast radii, an edge whose caller is itself
        invoked by many upstreams sits on more request paths (its
        failure-handling bug repeats per caller), and deeper edges are
        the storage hops themselves — so leaves rank by how shared and
        how terminal they are, not by enumeration luck.
        """
        discovery = {edge: index for index, edge in enumerate(space.edges)}
        fan_in: _t.Dict[str, int] = {}
        for _src, dst in space.edges:
            fan_in[dst] = fan_in.get(dst, 0) + 1
        ordered = sorted(
            discovery,
            key=lambda edge: (
                -space.edges[edge][1],             # subtree span count
                -fan_in.get(edge[0], 0),           # callers of the edge's src
                -(len(space.edges[edge][0]) - 1),  # depth of first occurrence
                discovery[edge],
            ),
        )
        return {edge: rank for rank, edge in enumerate(ordered)}

    def _static_score(self, coordinate: Coordinate, index: int) -> float:
        score = _PRIMITIVE_BAND[coordinate.fault] * BAND
        score += self._edge_rank.get(coordinate.edge, len(self._edge_rank))
        if coordinate.mode == "single":
            score += SINGLE_OFFSET
            # Deeper single coordinates and later ordinals refine later.
            score += coordinate.depth + coordinate.ordinal * 0.5
        return score

    # -- consumption ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pending)

    def pop_wave(self, size: int) -> _t.List[Coordinate]:
        """Up to ``size`` best pending coordinates, best first."""
        wave: _t.List[Coordinate] = []
        while len(wave) < size and self._heap:
            score, _index, key = heapq.heappop(self._heap)
            coordinate = self._pending.get(key)
            if coordinate is None or score != self._scores.get(key):
                continue  # pruned, already popped, or stale entry
            del self._pending[key]
            wave.append(coordinate)
        return wave

    # -- feedback ------------------------------------------------------------

    def _reschedule(self, key: str, delta: float) -> None:
        if key not in self._pending:
            return
        self._scores[key] += delta
        heapq.heappush(
            self._heap, (self._scores[key], self._enum_index[key], key)
        )

    def boost_neighborhood(self, coordinate: Coordinate) -> int:
        """An execution found a new trace shape: pull its edge's and
        callee's pending candidates earlier.  Returns how many moved."""
        moved = 0
        for key, pending in list(self._pending.items()):
            if pending.edge == coordinate.edge or pending.dst == coordinate.dst:
                self._reschedule(key, -BOOST)
                moved += 1
        return moved

    def defer_edge(self, coordinate: Coordinate) -> int:
        """An execution changed nothing observable: push the rest of
        that edge's candidates later.  Returns how many moved."""
        moved = 0
        for key, pending in list(self._pending.items()):
            if pending.edge == coordinate.edge:
                self._reschedule(key, DEFER)
                moved += 1
        return moved

    def prune_masked(self, coordinate: Coordinate) -> _t.List[str]:
        """Remove candidates masked by a confirmed failure at
        ``coordinate``: everything whose call-path strictly extends the
        confirmed path.  Returns the pruned keys."""
        prefix = coordinate.path
        removed: _t.List[str] = []
        for key, pending in list(self._pending.items()):
            if len(pending.path) > len(prefix) and pending.path[: len(prefix)] == prefix:
                del self._pending[key]
                removed.append(key)
        self.pruned.extend(removed)
        return removed
