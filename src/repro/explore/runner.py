"""The exploration loop: discover, prioritize, execute, learn, prune.

:func:`run_explore` is the subsystem's entry point.  One run:

1. **Discover** — execute the app fault-free once (in-process, keeping
   the event store), reconstruct the causal tree of the first test
   request, and enumerate the full coordinate space from it
   (:func:`~repro.explore.coords.enumerate_space`).  The fault-free
   shape digests become the coverage baseline.
2. **Seed the frontier** — FastFI-style per-edge sweeps plus surgical
   single-invocation coordinates, ordered by the
   :class:`~repro.explore.frontier.Frontier` heuristic (or by a seeded
   shuffle for the ``random`` baseline strategy).
3. **Execute in waves** — fixed-size waves go through the campaign
   fleet (threads or spawn-isolated processes); outcomes are consumed
   in dispatch order, so the loop's decisions are identical at any
   worker count on either backend.
4. **Learn** — new trace shapes boost their neighborhood, no-effect
   executions defer their edge, and a conclusively failed manifest
   check records the planted bug *and* prunes every pending candidate
   masked by the confirmed path.

The loop stops when the budget is spent, the frontier is empty, or —
with ``stop_when_found`` — every planted bug has surfaced.
"""

from __future__ import annotations

import dataclasses
import random as _random
import typing as _t

from repro.apps.outages import SEEDED_BUG_SUITE, SeededBugManifest
from repro.errors import ExploreError
from repro.explore.compiler import scenario_specs
from repro.explore.coords import (
    Coordinate,
    ExplorationSpace,
    enumerate_space,
    fault_primitives,
)
from repro.explore.executor import ExploreTask, run_wave
from repro.explore.frontier import Frontier
from repro.explore.report import BugFinding, CoverageReport
from repro.fuzz.differential import shape_digests_of
from repro.fuzz.spec import SOURCE_NAME
from repro.loadgen import ClosedLoopLoad
from repro.observability.cascade.graph import discover_graph
from repro.observability.cascade.whatif import order_candidates
from repro.observability.trace import reconstruct
from repro.tracing.context import TEST_ID_PREFIX

__all__ = ["ExploreResult", "STRATEGIES", "discover_space", "run_explore"]

STRATEGIES = ("prioritized", "random", "whatif")

#: Coordinates dispatched per fleet wave.  Fixed (never derived from
#: the worker count) so exploration order is workers-independent.
WAVE_SIZE = 8


@dataclasses.dataclass
class ExploreResult:
    """Everything one exploration run produced."""

    app: str
    strategy: str
    seed: int
    budget: int
    space: ExplorationSpace
    #: (coordinate key, outcome digest) per execution, dispatch order.
    executed: _t.List[_t.Tuple[str, str]]
    findings: _t.List[BugFinding]
    #: Keys pruned by masking, in pruning order.
    pruned: _t.List[str]
    #: All distinct shape digests observed (baseline + fault-provoked).
    shapes_seen: _t.Set[str]
    #: Executions that errored: (key, error detail).
    errors: _t.List[_t.Tuple[str, str]]
    report: CoverageReport

    @property
    def all_bugs_found(self) -> bool:
        return self.report.all_bugs_found

    @property
    def executions_to_all_bugs(self) -> _t.Optional[int]:
        return self.report.executions_to_all_bugs


def _manifest(app: str) -> SeededBugManifest:
    try:
        return SEEDED_BUG_SUITE[app]
    except KeyError:
        raise ExploreError(
            f"unknown seeded-bug app {app!r};"
            f" available: {', '.join(sorted(SEEDED_BUG_SUITE))}"
        ) from None


def discover_space(
    app: str,
    *,
    seed: int = 0,
    matcher_strategy: str = "table",
    scheduler: _t.Optional[str] = None,
) -> ExplorationSpace:
    """Run the app fault-free once and enumerate its coordinate space.

    Runs in-process (unlike fault executions, which go through the
    fleet) because enumeration needs the live event store to
    reconstruct the representative causal tree.
    """
    manifest = _manifest(app)
    application = manifest.builder()
    deployment = application.deploy(
        seed=seed, matcher_strategy=matcher_strategy, scheduler=scheduler
    )
    source = deployment.add_traffic_source(manifest.entry, name=SOURCE_NAME)
    load = ClosedLoopLoad(
        num_requests=manifest.requests, think_time=manifest.think_time
    )
    deployment.sim.process(load.driver(source), name="explore/discovery")
    deployment.sim.run()
    deployment.pipeline.flush()

    store = deployment.store
    trace = reconstruct(store, f"{TEST_ID_PREFIX}1")
    multi_instance = {
        name
        for name, instances in deployment.instances.items()
        if len(instances) > 1
    }
    # Fold *every* discovery trace (not just the representative one)
    # into the weighted dependency graph: call counts across the whole
    # fault-free workload are what the whatif simulation weighs.
    traces = [trace] + [
        reconstruct(store, f"{TEST_ID_PREFIX}{i}")
        for i in range(2, manifest.requests + 1)
    ]
    space = enumerate_space(
        manifest,
        trace,
        seed=seed,
        baseline_shapes=shape_digests_of(store).values(),
        multi_instance_srcs=multi_instance,
    )
    space.graph = discover_graph(traces)
    return space


def _random_order(space: ExplorationSpace, seed: int) -> _t.List[Coordinate]:
    """The random baseline's schedule: same universe, seeded shuffle,
    no scoring, no feedback, no pruning."""
    order = space.coordinates
    _random.Random(seed).shuffle(order)
    return order


def _whatif_order(
    space: ExplorationSpace, manifest: SeededBugManifest
) -> _t.List[Coordinate]:
    """The whatif strategy's schedule: every candidate's fault is
    simulated over the discovered dependency graph and the schedule is
    the resulting static ranking — predicted blast first, no online
    feedback (contrast with the prioritized frontier, which learns)."""
    if space.graph is None:
        raise ExploreError(
            "whatif strategy needs the discovery run's dependency graph"
        )
    intervals = {
        name: params.get("interval", 0.0)
        for name, params in fault_primitives(manifest)
    }
    return order_candidates(
        space.coordinates,
        space.graph,
        intervals=intervals,
        requests=manifest.requests,
    )


def run_explore(
    app: str,
    *,
    budget: int = 150,
    seed: int = 0,
    strategy: str = "prioritized",
    workers: _t.Union[int, str] = 1,
    backend: str = "threads",
    batch_size: int = 1,
    result_transport: _t.Optional[str] = None,
    matcher_strategy: str = "table",
    scheduler: _t.Optional[str] = None,
    stop_when_found: bool = False,
) -> ExploreResult:
    """Explore one seeded app's fault space within an execution budget.

    The fault-free discovery run is not counted against ``budget``;
    every fault execution is.  ``stop_when_found`` ends the run early
    once all planted bugs have surfaced (benchmarks measuring
    executions-to-all-bugs use it; coverage-oriented runs leave it off
    to keep mapping the space).
    """
    if strategy not in STRATEGIES:
        raise ExploreError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if budget < 1:
        raise ExploreError(f"budget must be >= 1, got {budget}")
    manifest = _manifest(app)
    space = discover_space(
        app, seed=seed, matcher_strategy=matcher_strategy, scheduler=scheduler
    )

    frontier = Frontier(space) if strategy == "prioritized" else None
    if frontier is not None:
        schedule = None
    elif strategy == "whatif":
        schedule = _whatif_order(space, manifest)
    else:
        schedule = _random_order(space, seed)

    known_shapes = set(space.baseline_shapes)
    executed: _t.List[_t.Tuple[str, str]] = []
    findings: _t.List[BugFinding] = []
    errors: _t.List[_t.Tuple[str, str]] = []
    found: _t.Set[str] = set()
    planted = set(manifest.bug_ids())
    executions_to_all: _t.Optional[int] = None

    def next_wave(size: int) -> _t.List[Coordinate]:
        if frontier is not None:
            return frontier.pop_wave(size)
        wave = schedule[:size]
        del schedule[:size]
        return wave

    while len(executed) < budget:
        if stop_when_found and planted and found >= planted:
            break
        wave = next_wave(min(WAVE_SIZE, budget - len(executed)))
        if not wave:
            break
        tasks = [
            ExploreTask(
                app=app,
                seed=seed,
                key=coordinate.key(),
                scenarios=tuple(scenario_specs(coordinate, manifest)),
                matcher_strategy=matcher_strategy,
                scheduler=scheduler,
            )
            for coordinate in wave
        ]
        outcomes = run_wave(
            tasks,
            workers=workers,
            backend=backend,
            batch_size=batch_size,
            result_transport=result_transport,
        )
        for coordinate, outcome in zip(wave, outcomes):
            executed.append((outcome.key, outcome.digest))
            if not outcome.ok:
                errors.append((outcome.key, outcome.error or "unknown"))
                continue
            new_bugs = sorted(manifest.bugs_found(outcome.verdicts) - found)
            if new_bugs:
                failed = tuple(
                    name
                    for name, passed, inconclusive in outcome.verdicts
                    if not passed and not inconclusive
                )
                for bug_id in new_bugs:
                    found.add(bug_id)
                    findings.append(
                        BugFinding(
                            bug_id=bug_id,
                            coordinate=outcome.key,
                            execution_index=len(executed),
                            failed_checks=failed,
                        )
                    )
                if planted and found >= planted and executions_to_all is None:
                    executions_to_all = len(executed)
                if frontier is not None:
                    # Masking: a confirmed failure here already
                    # surfaces anything a deeper fault on this path
                    # could show — drop those candidates.
                    frontier.prune_masked(coordinate)
            fresh = set(outcome.shapes) - known_shapes
            if frontier is not None:
                if fresh:
                    frontier.boost_neighborhood(coordinate)
                elif not new_bugs:
                    frontier.defer_edge(coordinate)
            known_shapes.update(fresh)

    pruned = list(frontier.pruned) if frontier is not None else []
    report = CoverageReport(
        app=app,
        strategy=strategy,
        seed=seed,
        budget=budget,
        edges_discovered=len(space.edges),
        coordinates_enumerated=len(space.sweeps) + len(space.singles),
        sweep_coordinates=len(space.sweeps),
        single_coordinates=len(space.singles),
        executed=len(executed),
        pruned=len(pruned),
        errors=len(errors),
        baseline_shapes=len(space.baseline_shapes),
        shapes_seen=len(known_shapes),
        new_shapes=len(known_shapes) - len(space.baseline_shapes),
        bugs_planted=sorted(planted),
        findings=list(findings),
        executions_to_all_bugs=executions_to_all,
    )
    return ExploreResult(
        app=app,
        strategy=strategy,
        seed=seed,
        budget=budget,
        space=space,
        executed=executed,
        findings=findings,
        pruned=pruned,
        shapes_seen=known_shapes,
        errors=errors,
        report=report,
    )
