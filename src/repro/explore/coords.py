"""Execution-index coordinates: replayable names for injection points.

Random fuzzing asks "inject *something somewhere*"; systematic
exploration needs to ask "inject *this fault at exactly that point*"
and to come back to the same point tomorrow.  Following Distributed
Execution Indexing (Meiklejohn & Padhye), every concrete injection
point is named by a :class:`Coordinate`:

    (entrypoint, call-path, invocation ordinal, fault primitive)

The coordinate space is discovered, not declared: one fault-free
execution of the app under its manifest workload yields causal trees
(via the observability layer), and every span in the representative
tree becomes one call-path.  Two granularities are enumerated:

* **sweep** — a persistent fault on one dependency edge across the
  whole test window (the FastFI-style per-edge robustness sweep).
  These seed the exploration frontier: bugs that need sustained
  pressure (retry storms, stuck breakers) only surface under sweeps.
* **single** — a surgical fault on exactly one invocation: the
  ``ordinal``-th call on one edge within one named request.  Replay
  compiles to a rule with an exact request-ID pattern,
  ``max_matches=1``, and ``skip_matches=ordinal`` — the K-th
  structural match is the K-th invocation, deterministically, because
  skipping consumes neither budget nor probability draws
  (:mod:`repro.agent.rules`).

Coordinates serialize to JSON (:meth:`Coordinate.to_dict`) and replay
bit-for-bit: the recipe compiler (:mod:`repro.explore.compiler`)
produces the same rules from the same coordinate on any backend.

Single-invocation ordinals count *per edge within one request*, in the
order the source sidecar's matcher observes the calls — which for a
single-replica source equals span-minting order.  Services deployed
with multiple replicas split that counter across per-instance
matchers, so ``single`` coordinates are only enumerated for edges
whose source runs exactly one instance (sweeps are emitted for every
edge regardless).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.outages import SeededBugManifest
from repro.errors import ExploreError
from repro.observability.spans import Span
from repro.observability.trace import Trace, trace_shape_digest
from repro.tracing.context import TEST_ID_PREFIX

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.cascade.graph import DependencyGraph

__all__ = [
    "DEFAULT_FAULT_KINDS",
    "FAULT_PRIMITIVES",
    "SHORT_DELAY",
    "Coordinate",
    "ExplorationSpace",
    "enumerate_space",
    "fault_primitives",
]

#: Interval (seconds) of the short-delay primitive: long enough to be
#: observable in traces, short enough that any sane timeout absorbs it.
SHORT_DELAY = 0.05

#: The fault primitives swept per injection point, in canonical order.
#: ``abort`` is an application-level 503, ``reset`` the paper's
#: ``Error=-1`` TCP-level termination, ``delay`` the manifest's
#: canonical long stall, ``delay_short`` a sub-timeout blip, ``gray``
#: a response-path stall (the reply limps home after the full
#: interval — gray failure), and ``exhaust`` a load-shed 429.
FAULT_PRIMITIVES: _t.Tuple[str, ...] = (
    "abort", "reset", "delay", "delay_short", "gray", "exhaust",
)

#: Primitives swept when a manifest doesn't pick its own vocabulary —
#: the original four, so existing apps' exploration schedules (and
#: their digest/benchmark baselines) are unchanged.
DEFAULT_FAULT_KINDS: _t.Tuple[str, ...] = ("abort", "reset", "delay", "delay_short")


def fault_primitives(manifest: SeededBugManifest) -> _t.List[_t.Tuple[str, dict]]:
    """(name, parameters) for each primitive, resolved for one app.

    The manifest's ``fault_kinds`` picks which primitives get swept
    (canonical :data:`FAULT_PRIMITIVES` order, regardless of how the
    manifest lists them).
    """
    catalog: _t.Dict[str, dict] = {
        "abort": {"error": 503},
        "reset": {"error": -1},
        "delay": {"interval": manifest.delay_interval},
        "delay_short": {"interval": SHORT_DELAY},
        "gray": {"interval": manifest.delay_interval, "on": "response"},
        "exhaust": {"error": 429},
    }
    kinds = set(manifest.fault_kinds)
    unknown = kinds - set(FAULT_PRIMITIVES)
    if unknown:
        raise ExploreError(
            f"manifest {manifest.name!r} lists unknown fault kinds"
            f" {sorted(unknown)}; expected a subset of {FAULT_PRIMITIVES}"
        )
    return [(name, catalog[name]) for name in FAULT_PRIMITIVES if name in kinds]


@dataclasses.dataclass(frozen=True)
class Coordinate:
    """One replayable injection point.

    ``path`` is the service chain from the traffic source to the
    callee, e.g. ``("user", "gateway", "catalog", "pricing")`` — the
    edge under fault is always ``(path[-2], path[-1])``.  ``ordinal``
    is the invocation index of that edge within ``request_id`` (single
    mode; sweeps pin it to 0 and target every test request).
    """

    app: str
    entry: str
    mode: str  # "sweep" | "single"
    path: _t.Tuple[str, ...]
    ordinal: int
    fault: str
    request_id: str  # exact ID (single) or glob over test traffic (sweep)

    def __post_init__(self) -> None:
        if self.mode not in ("sweep", "single"):
            raise ExploreError(f"unknown coordinate mode {self.mode!r}")
        if self.fault not in FAULT_PRIMITIVES:
            raise ExploreError(
                f"unknown fault primitive {self.fault!r};"
                f" expected one of {FAULT_PRIMITIVES}"
            )
        if len(self.path) < 2:
            raise ExploreError(
                f"coordinate path needs at least (src, dst), got {self.path!r}"
            )
        if self.ordinal < 0:
            raise ExploreError(f"ordinal must be >= 0, got {self.ordinal}")

    @property
    def src(self) -> str:
        return self.path[-2]

    @property
    def dst(self) -> str:
        return self.path[-1]

    @property
    def edge(self) -> _t.Tuple[str, str]:
        return (self.src, self.dst)

    @property
    def depth(self) -> int:
        """Edges between the traffic source and the faulted call."""
        return len(self.path) - 1

    def key(self) -> str:
        """Stable identifier used in frontiers, reports, and tests."""
        where = "->".join(self.path)
        if self.mode == "sweep":
            return f"sweep:{self.src}->{self.dst}:{self.fault}"
        return f"single:{where}@{self.ordinal}:{self.fault}"

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "entry": self.entry,
            "mode": self.mode,
            "path": list(self.path),
            "ordinal": self.ordinal,
            "fault": self.fault,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: _t.Mapping) -> "Coordinate":
        try:
            return cls(
                app=data["app"],
                entry=data["entry"],
                mode=data["mode"],
                path=tuple(data["path"]),
                ordinal=int(data["ordinal"]),
                fault=data["fault"],
                request_id=data["request_id"],
            )
        except KeyError as exc:
            raise ExploreError(f"coordinate dict missing field {exc}") from None


@dataclasses.dataclass
class ExplorationSpace:
    """Everything one fault-free discovery run learned about an app."""

    app: str
    entry: str
    seed: int
    #: Sweep coordinates (the seed frontier), enumeration order.
    sweeps: _t.List[Coordinate]
    #: Single-invocation coordinates, enumeration order.
    singles: _t.List[Coordinate]
    #: Discovered dependency edge -> (first-occurrence path, subtree
    #: span count beneath the first occurrence).  Blast radius drives
    #: the frontier's edge ranking.
    edges: _t.Dict[_t.Tuple[str, str], _t.Tuple[_t.Tuple[str, ...], int]]
    #: Shape digests observed fault-free (the coverage baseline).
    baseline_shapes: _t.List[str]
    #: Weighted dependency graph folded from the discovery run's
    #: traces (when the discoverer built one) — the substrate the
    #: ``whatif`` strategy simulates over.
    graph: _t.Optional["DependencyGraph"] = None

    @property
    def coordinates(self) -> _t.List[Coordinate]:
        """Full candidate universe: sweeps first, then singles."""
        return list(self.sweeps) + list(self.singles)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "entry": self.entry,
            "seed": self.seed,
            "sweeps": [coord.to_dict() for coord in self.sweeps],
            "singles": [coord.to_dict() for coord in self.singles],
            "edges": {
                f"{src}->{dst}": {"path": list(path), "subtree": subtree}
                for (src, dst), (path, subtree) in sorted(self.edges.items())
            },
            "baseline_shapes": list(self.baseline_shapes),
            "graph": self.graph.to_dict() if self.graph is not None else None,
        }


def _span_seq(span: Span) -> _t.Tuple[str, int]:
    """Sort key recovering minting order from a ``scope#N`` span ID."""
    scope, _, counter = span.span_id.rpartition("#")
    try:
        return (scope, int(counter))
    except ValueError:
        return (span.span_id, 0)


def _subtree_size(node) -> int:
    return 1 + sum(_subtree_size(child) for child in node.children)


def enumerate_space(
    manifest: SeededBugManifest,
    trace: Trace,
    *,
    seed: int,
    baseline_shapes: _t.Iterable[str],
    multi_instance_srcs: _t.AbstractSet[str] = frozenset(),
) -> ExplorationSpace:
    """Enumerate every injection point from one representative trace.

    ``trace`` is the causal tree of one fault-free request (requests of
    a closed-loop workload are structurally identical, so one tree
    names the whole per-request coordinate space).  ``multi_instance_srcs``
    lists services running more than one replica — their outgoing edges
    get sweeps only (see module docstring).
    """
    primitives = fault_primitives(manifest)

    # Edge ordinal = position among the request's (src, dst) calls in
    # matcher order.  Span IDs are minted by the source sidecar as the
    # call leaves, so (start, minting sequence) is exactly that order.
    edge_spans: _t.Dict[_t.Tuple[str, str], _t.List[Span]] = {}
    for span in trace.spans:
        edge_spans.setdefault((span.src, span.dst), []).append(span)
    ordinal_of: _t.Dict[str, int] = {}
    for group in edge_spans.values():
        group.sort(key=lambda span: (span.start, _span_seq(span)))
        for ordinal, span in enumerate(group):
            ordinal_of[span.span_id] = ordinal

    # Walk the tree: one call-path per node, depth-first in sibling
    # start order (deterministic), recording per-edge first occurrence
    # and blast radius for the frontier's edge ranking.
    edges: _t.Dict[_t.Tuple[str, str], _t.Tuple[_t.Tuple[str, ...], int]] = {}
    singles: _t.List[Coordinate] = []
    request_id = trace.request_id

    def visit(node, prefix: _t.Tuple[str, ...]) -> None:
        span = node.span
        path = prefix + (span.dst,) if prefix else (span.src, span.dst)
        edge = (span.src, span.dst)
        if edge not in edges:
            edges[edge] = (path, _subtree_size(node))
        if span.src not in multi_instance_srcs:
            for fault, _params in primitives:
                singles.append(
                    Coordinate(
                        app=manifest.name,
                        entry=manifest.entry,
                        mode="single",
                        path=path,
                        ordinal=ordinal_of[span.span_id],
                        fault=fault,
                        request_id=request_id,
                    )
                )
        for child in sorted(node.children, key=lambda n: (n.span.start, _span_seq(n.span))):
            visit(child, path)

    for root in sorted(trace.roots, key=lambda n: (n.span.start, _span_seq(n.span))):
        visit(root, ())

    sweeps = [
        Coordinate(
            app=manifest.name,
            entry=manifest.entry,
            mode="sweep",
            path=path,
            ordinal=0,
            fault=fault,
            request_id=f"{TEST_ID_PREFIX}*",
        )
        for edge, (path, _subtree) in edges.items()
        for fault, _params in primitives
    ]
    return ExplorationSpace(
        app=manifest.name,
        entry=manifest.entry,
        seed=seed,
        sweeps=sweeps,
        singles=singles,
        edges=edges,
        baseline_shapes=sorted(set(baseline_shapes)),
    )
