"""Fleet execution of exploration tasks.

Each task is one full simulated run: deploy the seeded app, install
the coordinate's compiled rules, drive the manifest workload, evaluate
the manifest's pattern checks, and distill the outcome into plain
data.  Tasks are plain-data too (app *name* plus scenario-spec dicts),
so the same task object runs on the thread fleet or pickles to a
spawn-isolated process worker — the outcome, including the strict
store digest, is identical on either backend, on either scheduler
lane, at any worker count.  That equality is load-bearing: the
exploration loop's decisions (pruning, coverage boosts, bug tallies)
depend only on outcome contents, so exploration order is reproducible
everywhere.

Checks are rebuilt *inside* the worker from the module-level
:data:`~repro.apps.outages.SEEDED_BUG_SUITE` registry — check objects
never cross a process boundary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as _t

from repro.agent.rules import fresh_rule_ids
from repro.apps.outages import SEEDED_BUG_SUITE, SeededBugManifest
from repro.campaign.fleet import BACKENDS, ProcessWorkerSpec, run_fleet
from repro.core.gremlin import Gremlin
from repro.errors import ExploreError, GremlinError
from repro.fuzz.differential import shape_digests_of
from repro.fuzz.spec import SOURCE_NAME, build_scenario
from repro.loadgen import ClosedLoopLoad

__all__ = [
    "ExploreOutcome",
    "ExploreTask",
    "execute_task",
    "run_wave",
]


@dataclasses.dataclass(frozen=True)
class ExploreTask:
    """One execution request: an app, a seed, and compiled scenarios."""

    app: str
    seed: int
    #: Coordinate key (or ``"baseline"`` for the discovery run).
    key: str
    #: Scenario-spec dicts (:mod:`repro.fuzz.spec` codec); empty for
    #: the fault-free baseline.
    scenarios: _t.Tuple[dict, ...] = ()
    matcher_strategy: str = "table"
    scheduler: _t.Optional[str] = None


@dataclasses.dataclass
class ExploreOutcome:
    """Plain-data result of one execution."""

    key: str
    #: Per manifest check: (name, passed, inconclusive).
    verdicts: _t.List[tuple]
    #: Sorted unique causal-tree shape digests across all requests.
    shapes: _t.List[str]
    #: Strict sha256 over timestamped records + verdicts + shapes —
    #: the bit-for-bit replay comparand.
    digest: str
    records: int
    #: Worker failure description; a crashed/raising execution yields
    #: an outcome with this set and everything else empty.
    error: _t.Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _manifest(app: str) -> SeededBugManifest:
    try:
        return SEEDED_BUG_SUITE[app]
    except KeyError:
        raise ExploreError(
            f"unknown seeded-bug app {app!r};"
            f" available: {', '.join(sorted(SEEDED_BUG_SUITE))}"
        ) from None


def execute_task(task: ExploreTask) -> ExploreOutcome:
    """Run one task in-process and distill its outcome."""
    manifest = _manifest(task.app)
    application = manifest.builder()
    deployment = application.deploy(
        seed=task.seed,
        matcher_strategy=task.matcher_strategy,
        scheduler=task.scheduler,
    )
    source = deployment.add_traffic_source(manifest.entry, name=SOURCE_NAME)
    gremlin = Gremlin(deployment)
    sim = deployment.sim

    scenarios = [build_scenario(spec) for spec in task.scenarios]
    if scenarios:
        # Scoped rule numbering: rules are 1..N per execution, so the
        # digest depends only on the task (see fuzz.differential).
        with fresh_rule_ids():
            rules = gremlin.translator.translate(scenarios)
        gremlin.orchestrator.apply(rules)

    load = ClosedLoopLoad(
        num_requests=manifest.requests, think_time=manifest.think_time
    )
    sim.process(load.driver(source), name=f"explore/{task.key}")
    sim.run()
    deployment.pipeline.flush()

    store = deployment.store
    verdicts = []
    for check in manifest.checks():
        result = check.run(store)
        verdicts.append((result.name, result.passed, result.inconclusive))
    shapes = sorted(set(shape_digests_of(store).values()))

    strict = [
        (
            record.kind,
            record.src,
            record.dst,
            record.request_id,
            record.status,
            record.error,
            record.fault_applied,
            record.gremlin_generated,
            round(record.injected_delay, 9),
            round(record.timestamp, 9),
            None if record.latency is None else round(record.latency, 9),
        )
        for record in store.all_records()
    ]
    digest = hashlib.sha256(
        json.dumps(
            {"records": strict, "verdicts": verdicts, "shapes": shapes},
            separators=(",", ":"),
            default=str,
        ).encode("utf-8")
    ).hexdigest()
    return ExploreOutcome(
        key=task.key,
        verdicts=verdicts,
        shapes=shapes,
        digest=digest,
        records=len(strict),
    )


def _error_outcome(key: str, detail: str) -> ExploreOutcome:
    return ExploreOutcome(
        key=key, verdicts=[], shapes=[], digest="", records=0, error=detail
    )


def _process_task(
    worker_id: int, task: ExploreTask, context: _t.Optional[_t.Mapping]
) -> ExploreOutcome:
    """Fleet entry point (module-level: pickles to spawn workers)."""
    try:
        return execute_task(task)
    except Exception as exc:  # noqa: BLE001 - fleet contract: never raise
        return _error_outcome(task.key, f"{type(exc).__name__}: {exc}")


def _crashed_task(task: ExploreTask, detail: str) -> ExploreOutcome:
    return _error_outcome(task.key, f"worker process died: {detail}")


def run_wave(
    tasks: _t.Sequence[ExploreTask],
    *,
    workers: _t.Union[int, str] = 1,
    backend: str = "threads",
    batch_size: int = 1,
    result_transport: _t.Optional[str] = None,
) -> _t.List[ExploreOutcome]:
    """Execute one wave of tasks on the fleet, results in task order.

    The wave is the exploration loop's unit of parallelism: its size is
    fixed by the caller (never derived from ``workers``), and results
    are consumed in dispatch order, so frontier decisions are identical
    at any parallelism level on either backend.  ``result_transport``
    selects the processes-backend result lane (pickle vs shm slabs);
    digests are byte-identical either way.
    """
    if backend not in BACKENDS:
        raise GremlinError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if not tasks:
        return []
    if backend == "processes":
        results = run_fleet(
            list(tasks),
            None,
            workers=workers,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=_process_task, context=None, on_crash=_crashed_task
            ),
            batch_size=batch_size,
            result_transport=result_transport,
        )
    else:
        results = run_fleet(
            list(tasks),
            lambda worker_id, task: _process_task(worker_id, task, None),
            workers=workers,
        )
    return [results[position] for position in range(len(tasks))]
