"""Coverage accounting for an exploration run.

The report is the run's auditable summary: how big the discovered
coordinate space was, how much of it was actually executed versus
pruned away, which trace shapes the faults provoked beyond the
fault-free baseline, and — against the seeded apps' ground truth —
which planted bugs surfaced and how many executions that took.
It serializes to JSON (``--coverage-out``) and renders as the CLI's
human summary.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["BugFinding", "CoverageReport"]


@dataclasses.dataclass(frozen=True)
class BugFinding:
    """One planted bug surfacing during exploration."""

    bug_id: str
    #: Coordinate whose execution produced the conclusive failure.
    coordinate: str
    #: 1-based count of executions spent when the bug surfaced.
    execution_index: int
    #: Manifest checks that failed conclusively on that execution.
    failed_checks: _t.Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "bug_id": self.bug_id,
            "coordinate": self.coordinate,
            "execution_index": self.execution_index,
            "failed_checks": list(self.failed_checks),
        }


@dataclasses.dataclass
class CoverageReport:
    """What one exploration run covered, found, and skipped."""

    app: str
    strategy: str
    seed: int
    budget: int
    edges_discovered: int
    coordinates_enumerated: int
    sweep_coordinates: int
    single_coordinates: int
    executed: int
    #: Coordinates removed by masking-based pruning (never executed).
    pruned: int
    #: Executions that errored (worker crash or in-worker exception).
    errors: int
    #: Distinct trace shapes in the fault-free baseline.
    baseline_shapes: int
    #: Distinct trace shapes observed across the whole run.
    shapes_seen: int
    #: Shapes provoked by faults that the baseline never produced.
    new_shapes: int
    bugs_planted: _t.List[str]
    findings: _t.List[BugFinding]
    #: 1-based execution count at which the *last* planted bug
    #: surfaced; ``None`` when the run missed at least one.
    executions_to_all_bugs: _t.Optional[int]

    @property
    def bugs_found(self) -> _t.List[str]:
        return [finding.bug_id for finding in self.findings]

    @property
    def all_bugs_found(self) -> bool:
        return set(self.bugs_found) >= set(self.bugs_planted)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "edges_discovered": self.edges_discovered,
            "coordinates_enumerated": self.coordinates_enumerated,
            "sweep_coordinates": self.sweep_coordinates,
            "single_coordinates": self.single_coordinates,
            "executed": self.executed,
            "pruned": self.pruned,
            "errors": self.errors,
            "baseline_shapes": self.baseline_shapes,
            "shapes_seen": self.shapes_seen,
            "new_shapes": self.new_shapes,
            "bugs_planted": list(self.bugs_planted),
            "bugs_found": self.bugs_found,
            "all_bugs_found": self.all_bugs_found,
            "executions_to_all_bugs": self.executions_to_all_bugs,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"exploration of {self.app!r} ({self.strategy}, seed={self.seed})",
            (
                f"  space     : {self.coordinates_enumerated} coordinates"
                f" ({self.sweep_coordinates} sweeps,"
                f" {self.single_coordinates} singles)"
                f" over {self.edges_discovered} edges"
            ),
            (
                f"  executed  : {self.executed}/{self.budget} budget"
                f" ({self.pruned} pruned as masked, {self.errors} errors)"
            ),
            (
                f"  shapes    : {self.shapes_seen} seen"
                f" ({self.baseline_shapes} baseline, {self.new_shapes} new)"
            ),
            (
                f"  bugs      : {len(self.bugs_found)}/{len(self.bugs_planted)}"
                f" planted bugs found"
                + (
                    f" after {self.executions_to_all_bugs} executions"
                    if self.executions_to_all_bugs is not None
                    else ""
                )
            ),
        ]
        for finding in self.findings:
            lines.append(
                f"    [{finding.execution_index:>3}] {finding.bug_id}"
                f"  <-  {finding.coordinate}"
            )
        missed = sorted(set(self.bugs_planted) - set(self.bugs_found))
        for bug_id in missed:
            lines.append(f"    [---] {bug_id}  MISSED")
        return "\n".join(lines)
