"""Deterministic compilation of coordinates into recipes and rules.

A coordinate names an injection point; this module turns it into the
exact data-plane programming that hits that point and nothing else,
reusing the same scenario vocabulary (and JSON codec) as the rest of
the stack:

* :func:`scenario_specs` — the portable ``{"kind", "params"}`` dicts
  (:mod:`repro.fuzz.spec` codec) that fleet workers rebuild in-process;
* :func:`compile_scenarios` — live :class:`FailureScenario` objects;
* :func:`coordinate_recipe` — a full :class:`~repro.core.recipe.Recipe`
  pairing the fault with the app manifest's pattern checks, runnable
  by the :class:`~repro.core.gremlin.Gremlin` facade like any
  hand-written recipe.

Compilation is a pure function of (coordinate, manifest): the same
coordinate always yields the same rules, which is what makes replay
bit-for-bit reproducible across backends, schedulers, and machines.

Targeting one invocation uses the rule plumbing end to end: an exact
request-ID ``pattern`` selects the request, ``skip_matches=ordinal``
lets earlier calls on the edge pass untouched, and ``max_matches=1``
retires the rule after the one injection.
"""

from __future__ import annotations

import typing as _t

from repro.apps.outages import SeededBugManifest
from repro.core.recipe import Recipe
from repro.core.scenarios import FailureScenario
from repro.errors import ExploreError
from repro.explore.coords import Coordinate, fault_primitives
from repro.fuzz.spec import build_scenario

__all__ = ["compile_scenarios", "coordinate_recipe", "scenario_specs"]


def scenario_specs(
    coordinate: Coordinate, manifest: SeededBugManifest
) -> _t.List[dict]:
    """The coordinate's fault as portable scenario-spec dicts."""
    if coordinate.app != manifest.name:
        raise ExploreError(
            f"coordinate {coordinate.key()!r} belongs to app"
            f" {coordinate.app!r}, not {manifest.name!r}"
        )
    params_by_fault = dict(fault_primitives(manifest))
    fault_params = params_by_fault[coordinate.fault]
    kind = "delay" if "interval" in fault_params else "abort"
    params: _t.Dict[str, _t.Any] = {
        "src": coordinate.src,
        "dst": coordinate.dst,
        "pattern": coordinate.request_id,
        "on": "request",
        "probability": 1.0,
    }
    params.update(fault_params)
    if coordinate.mode == "single":
        # Exactly one injection: the ordinal-th call on this edge
        # within the one named request.
        params["max_matches"] = 1
        params["skip_matches"] = coordinate.ordinal
    else:
        params["max_matches"] = None
        params["skip_matches"] = 0
    return [{"kind": kind, "params": params}]


def compile_scenarios(
    coordinate: Coordinate, manifest: SeededBugManifest
) -> _t.List[FailureScenario]:
    """Live scenario objects for one coordinate."""
    return [build_scenario(spec) for spec in scenario_specs(coordinate, manifest)]


def coordinate_recipe(
    coordinate: Coordinate, manifest: SeededBugManifest
) -> Recipe:
    """A complete recipe: the coordinate's fault + the manifest checks.

    The recipe is indistinguishable from a hand-written one, so the
    whole existing tooling (``Gremlin.run_recipe``, the campaign
    planner, recipe serialization in repro artifacts) applies to
    explored coordinates unchanged.
    """
    return Recipe(
        name=f"explore/{manifest.name}/{coordinate.key()}",
        scenarios=compile_scenarios(coordinate, manifest),
        checks=manifest.checks(),
    )
