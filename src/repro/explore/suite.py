"""Recipe suites: exploration findings exported as campaign input.

Exploration is how bugs are *found*; campaigns are how they are *kept
fixed*.  This module bridges the two: the coordinates whose executions
surfaced a planted bug export to a JSON suite
(:func:`export_recipe_suite`, CLI ``fuzz explore --recipes-out``), and
a campaign loads that suite back as extra recipes
(:func:`load_recipe_suite`, CLI ``campaign run --recipes``) — the
exploration's discoveries become the regression suite's teeth, with
the same bit-for-bit replay guarantee coordinates always carry.
"""

from __future__ import annotations

import json
import typing as _t

from repro.errors import ExploreError
from repro.explore.compiler import coordinate_recipe
from repro.explore.coords import Coordinate

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.recipes import Recipe
    from repro.explore.runner import ExploreResult

__all__ = ["SUITE_VERSION", "export_recipe_suite", "load_recipe_suite"]

#: Suite document format version (bumped on schema changes).
SUITE_VERSION = 1


def export_recipe_suite(result: "ExploreResult") -> dict:
    """Serialize an exploration's bug-finding coordinates as a suite.

    One entry per finding, in discovery order, deduplicated on the
    coordinate (two bugs surfacing on one execution share it).  The
    full coordinate dict rides along, so loading needs no re-discovery.
    """
    by_key = {coordinate.key(): coordinate for coordinate in result.space.coordinates}
    entries: _t.List[dict] = []
    seen: _t.Set[str] = set()
    for finding in result.findings:
        if finding.coordinate in seen:
            continue
        seen.add(finding.coordinate)
        coordinate = by_key.get(finding.coordinate)
        if coordinate is None:  # pragma: no cover - space/finding mismatch
            raise ExploreError(
                f"finding references unknown coordinate {finding.coordinate!r}"
            )
        entries.append(
            {
                "key": finding.coordinate,
                "bug_ids": sorted(
                    f.bug_id for f in result.findings
                    if f.coordinate == finding.coordinate
                ),
                "coordinate": coordinate.to_dict(),
            }
        )
    return {
        "suite": "explore-recipes",
        "version": SUITE_VERSION,
        "app": result.app,
        "strategy": result.strategy,
        "seed": result.seed,
        "coordinates": entries,
    }


def dump_recipe_suite(result: "ExploreResult", path: str) -> None:
    """Write :func:`export_recipe_suite` output as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_recipe_suite(result), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_recipe_suite(doc: _t.Mapping) -> _t.Tuple[str, _t.List["Recipe"]]:
    """Compile a suite document back into ``(app name, recipes)``.

    Each coordinate compiles through the same
    :func:`~repro.explore.compiler.coordinate_recipe` path exploration
    itself replays through, so a campaign running the returned recipes
    re-executes the exact injections that surfaced the bugs —
    including the manifest's pattern checks as assertions.
    """
    from repro.apps.outages import SEEDED_BUG_SUITE

    if doc.get("suite") != "explore-recipes":
        raise ExploreError(
            f"not a recipe suite document (suite={doc.get('suite')!r})"
        )
    version = doc.get("version")
    if version != SUITE_VERSION:
        raise ExploreError(
            f"unsupported recipe suite version {version!r}"
            f" (this build reads {SUITE_VERSION})"
        )
    app = doc.get("app")
    if app not in SEEDED_BUG_SUITE:
        raise ExploreError(f"recipe suite targets unknown app {app!r}")
    manifest = SEEDED_BUG_SUITE[app]
    recipes = []
    for entry in doc.get("coordinates", ()):
        coordinate = Coordinate.from_dict(entry["coordinate"])
        if coordinate.app != app:
            raise ExploreError(
                f"coordinate {entry.get('key')!r} targets app"
                f" {coordinate.app!r}, suite says {app!r}"
            )
        recipes.append(coordinate_recipe(coordinate, manifest))
    return app, recipes


def read_recipe_suite(path: str) -> _t.Tuple[str, _t.List["Recipe"]]:
    """:func:`load_recipe_suite` from a file path."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ExploreError(f"cannot read recipe suite {path!r}: {exc}") from exc
    return load_recipe_suite(doc)
