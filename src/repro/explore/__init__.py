"""Systematic fault-space exploration.

Where :mod:`repro.fuzz` samples the fault space at random, this package
maps it: a fault-free discovery run names every injection point as a
replayable execution-index coordinate (entrypoint, call-path,
invocation ordinal, fault primitive); a prioritized frontier — seeded
with FastFI-style per-edge sweeps — decides execution order; trace-shape
coverage feedback steers it; masking-based pruning shrinks it; and the
coverage report accounts for all of it against the seeded apps' planted
ground truth (:data:`repro.apps.SEEDED_BUG_SUITE`).

Modules:

* :mod:`~repro.explore.coords` — the coordinate model and enumeration
* :mod:`~repro.explore.compiler` — coordinate → scenarios/recipe
* :mod:`~repro.explore.frontier` — prioritized search with pruning
* :mod:`~repro.explore.executor` — fleet execution of coordinates
* :mod:`~repro.explore.runner` — the exploration loop
* :mod:`~repro.explore.report` — coverage accounting
* :mod:`~repro.explore.suite` — findings exported as campaign recipes

Entry point: :func:`~repro.explore.runner.run_explore` (CLI verb
``fuzz explore``).
"""

from repro.explore.compiler import compile_scenarios, coordinate_recipe, scenario_specs
from repro.explore.coords import (
    FAULT_PRIMITIVES,
    Coordinate,
    ExplorationSpace,
    enumerate_space,
    fault_primitives,
)
from repro.explore.executor import ExploreOutcome, ExploreTask, execute_task, run_wave
from repro.explore.frontier import Frontier
from repro.explore.report import BugFinding, CoverageReport
from repro.explore.runner import (
    STRATEGIES,
    ExploreResult,
    discover_space,
    run_explore,
)
from repro.explore.suite import (
    dump_recipe_suite,
    export_recipe_suite,
    load_recipe_suite,
    read_recipe_suite,
)

__all__ = [
    "FAULT_PRIMITIVES",
    "STRATEGIES",
    "BugFinding",
    "Coordinate",
    "CoverageReport",
    "ExplorationSpace",
    "ExploreOutcome",
    "ExploreResult",
    "ExploreTask",
    "Frontier",
    "compile_scenarios",
    "coordinate_recipe",
    "discover_space",
    "dump_recipe_suite",
    "enumerate_space",
    "execute_task",
    "export_recipe_suite",
    "fault_primitives",
    "load_recipe_suite",
    "read_recipe_suite",
    "run_explore",
    "run_wave",
    "scenario_specs",
]
