"""Seeded generator of random fuzz cases.

Every case is derived from ``(master_seed, index)`` through
:func:`~repro.campaign.plan.derive_seed`-style hashing, so a master
seed names an entire reproducible corpus: case ``i`` is the same
topology, scenarios, checks, and workload on every machine and for
every worker count, and a failing case replays from its index alone.

The generator skews toward the oracle's deterministic domain (most
probabilities are 0 or 1) while still producing fractional-probability
and named-app cases that exercise the metamorphic checks — the
differential runner picks the applicable battery per case.
"""

from __future__ import annotations

import random
import typing as _t

from repro.campaign.plan import derive_seed
from repro.fuzz.spec import (
    SOURCE_NAME,
    CheckSpec,
    FuzzCase,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.microservice.app import Application

__all__ = ["FuzzGenerator"]

#: Substrings that occur in fanout/leaf reply bodies — Modify rules
#: generated from these can structurally match real traffic.
_BODY_TOKENS = ("ok", "from", "dependency", "degraded")

_ABORT_STATUSES = (500, 502, 503)
_DELAY_INTERVALS = ("50ms", "100ms", "250ms")
_ID_PATTERNS = ("test-*", "test-1", "*")


class FuzzGenerator:
    """Derives :class:`FuzzCase` instances from a master seed."""

    def __init__(
        self,
        master_seed: int,
        *,
        app_registry: _t.Optional[
            _t.Mapping[str, _t.Callable[[], Application]]
        ] = None,
        app_fraction: float = 0.2,
    ) -> None:
        self.master_seed = master_seed
        self.app_registry = dict(app_registry) if app_registry else {}
        self.app_fraction = app_fraction if self.app_registry else 0.0
        #: name -> (services, edges, entry), derived once per app.
        self._app_shapes: dict[str, tuple] = {}

    # -- public API ----------------------------------------------------------

    def case(self, index: int) -> FuzzCase:
        """Case ``index`` of this master seed's corpus."""
        rng = random.Random(derive_seed(self.master_seed, "fuzz-case", index))
        if rng.random() < self.app_fraction:
            topology, services, edges = self._app_topology(rng)
        else:
            topology, services, edges = self._dag_topology(rng)
        # Rules can also gate the traffic-source edge.
        rule_edges = [(SOURCE_NAME, topology.entry)] + list(edges)
        # Service-targeted scenarios (crash/hang/overload/degrade)
        # decompose over the target's *dependents*, so they may only
        # pick services that have callers at runtime: every edge
        # destination, plus the entry (which the traffic source dials).
        # Named apps can have additional entry services nobody calls.
        targets = sorted({dst for _, dst in edges} | {topology.entry})
        scenarios = [
            self._scenario(rng, services, targets, rule_edges)
            for _ in range(rng.randint(1, 3))
        ]
        checks = [
            self._check(rng, rule_edges) for _ in range(rng.randint(1, 3))
        ]
        workload = WorkloadSpec(
            requests=rng.randint(2, 8),
            think_time=rng.choice((0.0, 0.01, 0.1)),
        )
        return FuzzCase(
            case_id=f"fuzz-{self.master_seed}-{index}",
            seed=derive_seed(self.master_seed, "fuzz-deploy", index),
            topology=topology,
            scenarios=scenarios,
            checks=checks,
            workload=workload,
        )

    def generate(self, count: int) -> _t.List[FuzzCase]:
        """The first ``count`` cases of the corpus."""
        return [self.case(index) for index in range(count)]

    # -- topologies ----------------------------------------------------------

    def _dag_topology(self, rng: random.Random) -> tuple:
        """A connected DAG: every non-root service has >= 1 caller."""
        size = rng.randint(3, 7)
        services = [f"s{i}" for i in range(size)]
        edges: list[tuple] = []
        for j in range(1, size):
            parents = rng.sample(range(j), k=min(j, rng.randint(1, 2)))
            for i in sorted(parents):
                edges.append((services[i], services[j]))
        # A few extra forward edges for diamond shapes.
        for _ in range(rng.randint(0, 2)):
            i = rng.randint(0, size - 2)
            j = rng.randint(i + 1, size - 1)
            if (services[i], services[j]) not in edges:
                edges.append((services[i], services[j]))
        # Group by caller so edge order == call order == graph order.
        edges.sort(key=lambda edge: services.index(edge[0]))
        interior = sorted({src for src, _ in edges})
        partial_ok = [
            service for service in interior if rng.random() < 0.3
        ]
        topology = TopologySpec(
            kind="dag",
            services=services,
            edges=edges,
            entry=services[0],
            partial_ok=partial_ok,
        )
        return topology, services, edges

    def _app_topology(self, rng: random.Random) -> tuple:
        """A named prebuilt application (metamorphic battery only)."""
        name = rng.choice(sorted(self.app_registry))
        services, edges, entry = self._app_shape(name)
        topology = TopologySpec(kind="app", entry=entry, app=name)
        return topology, services, edges

    def _app_shape(self, name: str) -> tuple:
        shape = self._app_shapes.get(name)
        if shape is None:
            graph = self.app_registry[name]().logical_graph()
            services = sorted(graph.services())
            edges = sorted(graph.edges())
            entry = graph.entry_services()[0]
            shape = self._app_shapes[name] = (services, edges, entry)
        return shape

    # -- scenarios -----------------------------------------------------------

    def _probability(self, rng: random.Random) -> float:
        """Mostly deterministic; occasionally fractional (metamorphic)."""
        roll = rng.random()
        if roll < 0.70:
            return 1.0
        if roll < 0.85:
            return 0.0
        return rng.choice((0.25, 0.5, 0.75))

    def _max_matches(self, rng: random.Random) -> _t.Optional[int]:
        return rng.choice((None, None, None, 1, 2, 3))

    def _scenario(
        self,
        rng: random.Random,
        services: _t.Sequence[str],
        targets: _t.Sequence[str],
        edges: _t.Sequence[tuple],
    ) -> ScenarioSpec:
        kind = rng.choice(
            (
                "abort", "abort", "delay", "delay", "modify", "disconnect",
                "crash", "hang", "overload", "degrade", "partition",
                "fake_success", "retry_storm", "gray_failure",
                "misconfiguration", "resource_exhaustion", "noop_control",
            )
        )
        src, dst = rng.choice(list(edges))
        service = rng.choice(list(targets))
        if kind == "abort":
            params = {
                "src": src,
                "dst": dst,
                "error": rng.choice(_ABORT_STATUSES),
                "pattern": rng.choice(_ID_PATTERNS),
                "on": rng.choice(("request", "response")),
                "probability": self._probability(rng),
                "max_matches": self._max_matches(rng),
            }
        elif kind == "delay":
            params = {
                "src": src,
                "dst": dst,
                "interval": rng.choice(_DELAY_INTERVALS),
                "pattern": rng.choice(_ID_PATTERNS),
                "on": rng.choice(("request", "response")),
                "probability": self._probability(rng),
                "max_matches": self._max_matches(rng),
            }
        elif kind == "modify":
            params = {
                "src": src,
                "dst": dst,
                "pattern": rng.choice(_BODY_TOKENS),
                "replace_bytes": rng.choice(("oops", "nope", "")),
                "id_pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "disconnect":
            params = {
                "service1": src,
                "service2": dst,
                "error": rng.choice(_ABORT_STATUSES),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "crash":
            params = {
                "service": service,
                "pattern": rng.choice(_ID_PATTERNS),
                "probability": rng.choice((1.0, 1.0, 0.0)),
            }
        elif kind == "hang":
            params = {
                "service": service,
                "interval": rng.choice(("1s", "2s")),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "overload":
            params = {
                "service": service,
                "abort_fraction": rng.choice((0.0, 0.25, 0.5, 1.0)),
                "interval": rng.choice(_DELAY_INTERVALS),
                "error": rng.choice(_ABORT_STATUSES),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "degrade":
            params = {
                "service": service,
                "interval": rng.choice(("500ms", "1s")),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "partition":
            shuffled = list(services)
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            params = {
                "group_a": sorted(shuffled[:cut]),
                "group_b": sorted(shuffled[cut:]),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "fake_success":
            params = {
                "service": service,
                "pattern": rng.choice(_BODY_TOKENS),
                "replace_bytes": rng.choice(("oops", "fine")),
                "id_pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "retry_storm":
            params = {
                "service": service,
                "error": rng.choice(_ABORT_STATUSES),
                "pattern": rng.choice(_ID_PATTERNS),
                "probability": rng.choice((1.0, 1.0, 0.0)),
            }
        elif kind == "gray_failure":
            params = {
                "service": service,
                "interval": rng.choice(_DELAY_INTERVALS),
                "slow_fraction": rng.choice((1.0, 1.0, 0.0, 0.5)),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "misconfiguration":
            params = {
                "service": service,
                "mode": rng.choice(("endpoint", "reply")),
                "error": rng.choice((404, 400)),
                "reply_pattern": rng.choice(_BODY_TOKENS),
                "replace_bytes": rng.choice(("<garbage>", "???")),
                "pattern": rng.choice(_ID_PATTERNS),
            }
        elif kind == "resource_exhaustion":
            params = {
                "service": service,
                "interval": rng.choice(_DELAY_INTERVALS),
                "shed_after": rng.randint(1, 4),
                "error": 429,
                "pattern": rng.choice(_ID_PATTERNS),
            }
        else:  # noop_control
            params = {
                "service": service,
                "pattern": rng.choice(_ID_PATTERNS),
            }
        return {"kind": kind, "params": params}

    # -- checks --------------------------------------------------------------

    def _check(self, rng: random.Random, edges: _t.Sequence[tuple]) -> CheckSpec:
        src, dst = rng.choice(list(edges))
        if rng.random() < 0.5:
            params = {
                "src": src,
                "dst": dst,
                "status": rng.choice((200, 500, 502, 503)),
                "num_match": rng.randint(1, 3),
                "with_rule": rng.random() < 0.7,
                "id_pattern": rng.choice(_ID_PATTERNS),
            }
            return {"kind": "edge_status", "params": params}
        params = {
            "src": src,
            "dst": dst,
            "op": rng.choice(("==", ">=", "<=")),
            "count": rng.randint(0, 8),
            "id_pattern": rng.choice(_ID_PATTERNS),
        }
        return {"kind": "edge_count", "params": params}
