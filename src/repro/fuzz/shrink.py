"""Greedy failure minimization for fuzz cases.

When the differential runner flags a case, the raw generated input is
usually bigger than the bug it found: extra scenarios, a longer
workload, services the failing interaction never touches.  The
shrinker repeatedly tries structure-preserving reductions — fewer
requests, dropped scenarios, dropped checks, pruned DAG services — and
keeps each one only if the reduced case *still produces at least one
mismatch*.  Because every candidate is re-executed through the full
differential battery, the minimal case is guaranteed to reproduce, not
merely resemble, the original failure.

The loop runs passes to a fixpoint (a successful reduction may enable
earlier passes to fire again) with a hard cap on total executions so a
pathological case cannot stall a campaign.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.fuzz.differential import CaseReport, run_case
from repro.fuzz.spec import FuzzCase, TopologySpec, WorkloadSpec

__all__ = ["ShrinkResult", "shrink"]

#: Upper bound on differential executions one shrink may spend.
MAX_EVALUATIONS = 200


@dataclasses.dataclass
class ShrinkResult:
    """The minimal failing case plus how it was reached."""

    case: FuzzCase
    #: The battery report of the minimal case (still failing).
    report: CaseReport
    #: Human-readable reduction steps that were kept.
    steps: _t.List[str] = dataclasses.field(default_factory=list)
    #: Differential executions spent.
    evaluations: int = 0


def shrink(
    case: FuzzCase,
    *,
    app_registry: _t.Optional[_t.Mapping] = None,
    max_evaluations: int = MAX_EVALUATIONS,
) -> ShrinkResult:
    """Minimize ``case`` while preserving at least one mismatch.

    ``case`` must currently fail the battery; raises ``ValueError``
    otherwise (shrinking a passing case would loop pointlessly).
    """
    report = run_case(case, app_registry=app_registry)
    if not report.failed:
        raise ValueError(f"case {case.case_id} passes the battery; nothing to shrink")
    state = ShrinkResult(case=case, report=report, evaluations=1)

    def attempt(candidate: FuzzCase, step: str) -> bool:
        if state.evaluations >= max_evaluations:
            return False
        state.evaluations += 1
        candidate_report = run_case(candidate, app_registry=app_registry)
        if candidate_report.failed:
            state.case = candidate
            state.report = candidate_report
            state.steps.append(step)
            return True
        return False

    progress = True
    while progress and state.evaluations < max_evaluations:
        progress = (
            _shrink_workload(state, attempt)
            | _shrink_scenarios(state, attempt)
            | _shrink_checks(state, attempt)
            | _shrink_services(state, attempt)
        )
    return state


Attempt = _t.Callable[[FuzzCase, str], bool]


def _shrink_workload(state: ShrinkResult, attempt: Attempt) -> bool:
    """Fewer requests, zero think time."""
    changed = False
    while True:
        workload = state.case.workload
        candidates = []
        if workload.requests > 1:
            candidates.append(1)
            if workload.requests > 3:
                candidates.append(workload.requests // 2)
        reduced = False
        for requests in candidates:
            candidate = _replace(
                state.case,
                workload=WorkloadSpec(requests=requests, think_time=workload.think_time),
            )
            if attempt(candidate, f"workload: {workload.requests} -> {requests} requests"):
                changed = reduced = True
                break
        if not reduced:
            break
    workload = state.case.workload
    if workload.think_time > 0:
        candidate = _replace(
            state.case,
            workload=WorkloadSpec(requests=workload.requests, think_time=0.0),
        )
        if attempt(candidate, "workload: think_time -> 0"):
            changed = True
    return changed


def _shrink_scenarios(state: ShrinkResult, attempt: Attempt) -> bool:
    """Drop whole scenarios, one at a time (last first)."""
    changed = False
    index = len(state.case.scenarios) - 1
    while index >= 0 and len(state.case.scenarios) > 1:
        scenarios = list(state.case.scenarios)
        dropped = scenarios.pop(index)
        candidate = _replace(state.case, scenarios=scenarios)
        if attempt(candidate, f"drop scenario {dropped['kind']}[{index}]"):
            changed = True
        index -= 1
    return changed


def _shrink_checks(state: ShrinkResult, attempt: Attempt) -> bool:
    """Drop checks one at a time (keeps any check the mismatch needs)."""
    changed = False
    index = len(state.case.checks) - 1
    while index >= 0:
        checks = list(state.case.checks)
        dropped = checks.pop(index)
        candidate = _replace(state.case, checks=checks)
        if attempt(candidate, f"drop check {dropped['kind']}[{index}]"):
            changed = True
        index -= 1
    return changed


def _shrink_services(state: ShrinkResult, attempt: Attempt) -> bool:
    """Prune DAG services no scenario or check references."""
    if state.case.topology.kind != "dag":
        return False
    changed = False
    for service in list(reversed(state.case.topology.services)):
        topology = state.case.topology
        if service == topology.entry or service not in topology.services:
            continue
        if service in _referenced_names(state.case):
            continue
        services = [name for name in topology.services if name != service]
        edges = [
            edge for edge in topology.edges if service not in edge
        ]
        candidate = _replace(
            state.case,
            topology=TopologySpec(
                kind="dag",
                services=services,
                edges=edges,
                entry=topology.entry,
                partial_ok=[name for name in topology.partial_ok if name != service],
            ),
        )
        if attempt(candidate, f"prune service {service}"):
            changed = True
    return changed


def _referenced_names(case: FuzzCase) -> set:
    """Every string (or string-list element) a scenario/check names."""
    names: set = set()
    for spec in list(case.scenarios) + list(case.checks):
        for value in spec["params"].values():
            if isinstance(value, str):
                names.add(value)
            elif isinstance(value, (list, tuple)):
                names.update(v for v in value if isinstance(v, str))
    return names


def _replace(case: FuzzCase, **changes: _t.Any) -> FuzzCase:
    return dataclasses.replace(case, **changes)
