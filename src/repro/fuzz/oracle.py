"""Reference oracle: predict a fuzz case's outcome from first principles.

The oracle re-implements the *specified* semantics of the stack —
Table 2 fault rules applied first-match-wins at the caller's sidecar,
naive clients (one attempt, no timeout), fanout handlers, and the
Table 3 checker — as a direct recursive walk over the logical graph.
It never touches the simulator, the agents, or the event store, so a
disagreement between its prediction and a real execution localizes a
bug to the implementation (or to the oracle's reading of the spec —
either way, a real finding).

Domain: synthetic-DAG topologies with deterministic rule sets
(``FuzzCase.oracle_eligible``).  Every service has one replica, naive
client policies, and a sequential closed-loop workload, so the whole
execution is a deterministic depth-first traversal:

* request records are emitted by the caller-side agent before the
  forward, reply records after — DFS pre/post order, which is also
  virtual-timestamp order because every hop has positive latency;
* at most one rule per direction applies per message (first match
  wins), budgets burn only on application, ``probability=0`` rules
  structurally match but never apply;
* a TCP reset propagates as ``ConnectionResetError_`` to the caller's
  handler, which a fanout converts into a 500 (or a degraded 200);
* the request record is updated in place with the final outcome, so
  its predicted ``status``/``fault_applied`` are the *final* values.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import re
import typing as _t

from repro.agent.rules import FaultRule, FaultType, fresh_rule_ids
from repro.errors import GremlinError
from repro.fuzz.spec import SOURCE_NAME, FuzzCase, build_check, build_scenario
from repro.fuzz.spec import EdgeCountCheck, EdgeStatusCheck

__all__ = ["OracleError", "PredictedRecord", "Prediction", "predict"]

#: Exception class name a reset surfaces as (``type(exc).__name__``).
_RESET_ERROR = "ConnectionResetError_"


class OracleError(GremlinError):
    """The case is outside the oracle's deterministic domain."""


@dataclasses.dataclass
class PredictedRecord:
    """The oracle's image of one observation record (final field values)."""

    kind: str
    src: str
    dst: str
    request_id: str
    status: _t.Optional[int] = None
    error: _t.Optional[str] = None
    fault_applied: _t.Optional[str] = None
    gremlin_generated: bool = False
    injected_delay: float = 0.0

    def key(self) -> tuple:
        """The comparison tuple the differential runner diffs on."""
        return (
            self.kind,
            self.src,
            self.dst,
            self.request_id,
            self.status,
            self.error,
            self.fault_applied,
            self.gremlin_generated,
            round(self.injected_delay, 9),
        )


@dataclasses.dataclass
class Prediction:
    """Everything the oracle expects a case execution to produce."""

    #: All records in emission (= timestamp) order.
    records: _t.List[PredictedRecord]
    #: Per top-level request: (request_id, status, error).
    samples: _t.List[tuple]
    #: Per check: (label, passed, inconclusive).
    verdicts: _t.List[tuple]


class _InstalledRule:
    """A rule plus the per-agent budget state the oracle tracks."""

    def __init__(self, rule: FaultRule) -> None:
        self.rule = rule
        self.remaining = rule.max_matches
        #: Structural matches to let through before the fault arms
        #: (mirrors ``InstalledRule.to_skip``): a skipped match takes
        #: no probability draw and burns no budget.
        self.to_skip = rule.skip_matches
        pattern = rule.flow_pattern
        self.regex = None if pattern == "*" else re.compile(fnmatch.translate(pattern))

    @property
    def exhausted(self) -> bool:
        return self.remaining is not None and self.remaining <= 0

    def matches_id(self, request_id: str) -> bool:
        return self.regex is None or self.regex.match(request_id) is not None

    def consume(self) -> None:
        if self.remaining is not None:
            self.remaining -= 1


class _Walker:
    """One case's predicted execution state."""

    def __init__(self, case: FuzzCase) -> None:
        self.case = case
        self.topology = case.topology
        graph = self.topology.logical_graph()
        rules: _t.List[FaultRule] = []
        # Scoped numbering mirrors execute_case: the oracle's rules get
        # the same 1..N ids the real stack assigns, backend-independent.
        with fresh_rule_ids():
            for spec in case.scenarios:
                rules.extend(build_scenario(spec).decompose(graph))
        # The orchestrator installs in rule order, each rule on every
        # agent of its src; one replica per service => one agent.
        self.agents: _t.Dict[str, _t.List[_InstalledRule]] = {}
        for rule in rules:
            self.agents.setdefault(rule.src, []).append(_InstalledRule(rule))
        self.records: _t.List[PredictedRecord] = []

    # -- matcher mirror ------------------------------------------------------

    def _match(
        self, src: str, dst: str, direction: str, request_id: str, body: bytes
    ) -> _t.Optional[_InstalledRule]:
        for installed in self.agents.get(src, ()):
            rule = installed.rule
            if rule.dst != dst or rule.on != direction:
                continue
            if installed.exhausted:
                continue
            if not installed.matches_id(request_id):
                continue
            if rule.fault_type == FaultType.MODIFY and rule.search_bytes not in body:
                continue
            if installed.to_skip > 0:
                # Skip happens before the probability draw and burns no
                # budget — the matcher's deterministic skip discipline.
                installed.to_skip -= 1
                continue
            probability = rule.probability
            if probability < 1.0:
                if probability <= 0.0:
                    continue  # the draw (random() >= 0) always loses
                raise OracleError(
                    f"rule {rule.describe()} has fractional probability {probability}"
                )
            installed.consume()
            return installed
        return None

    # -- data-path mirror ----------------------------------------------------

    def call_edge(self, src: str, dst: str, request_id: str) -> tuple:
        """One proxied exchange on edge (src, dst).

        Returns ``(status, error_name)`` as the caller's naive client
        surfaces it: an HTTP status (any code — naive clients return
        5xx as-is), or ``(None, "ConnectionResetError_")``.
        """
        record = PredictedRecord(
            kind="request", src=src, dst=dst, request_id=request_id
        )
        faults: _t.List[str] = []
        injected = 0.0

        hit = self._match(src, dst, "request", request_id, body=b"")
        if hit is not None:
            rule = hit.rule
            faults.append(rule.describe())
            if rule.fault_type == FaultType.DELAY:
                injected += rule.interval or 0.0
            elif rule.fault_type == FaultType.ABORT:
                record.fault_applied = "+".join(faults)
                self.records.append(record)
                if rule.is_reset:
                    record.error = "reset"
                    self._reply(record, injected, status=None, error="reset",
                                gremlin_generated=True)
                    return (None, _RESET_ERROR)
                record.status = rule.error
                record.injected_delay = injected
                self._reply(record, injected, status=rule.error, error=None,
                            gremlin_generated=True)
                return (rule.error, None)
            # Modify on a request direction: fanout request bodies are
            # empty, so a Modify rule can never structurally match here
            # (search_bytes is non-empty by validation); unreachable in
            # the oracle's domain but kept for clarity.

        record.fault_applied = "+".join(faults) if faults else None
        record.injected_delay = injected
        self.records.append(record)

        status, body = self.run_handler(dst, request_id)

        hit = self._match(src, dst, "response", request_id, body=body)
        gremlin_generated = False
        if hit is not None:
            rule = hit.rule
            faults.append(rule.describe())
            if rule.fault_type == FaultType.DELAY:
                injected += rule.interval or 0.0
            elif rule.fault_type == FaultType.ABORT:
                if rule.is_reset:
                    record.fault_applied = "+".join(faults)
                    record.error = "reset"
                    # the in-place update never reaches the status
                    # assignment, so the request record keeps status
                    # None and its request-side injected_delay.
                    self._reply(record, injected, status=None, error="reset",
                                gremlin_generated=True)
                    return (None, _RESET_ERROR)
                status = rule.error
                gremlin_generated = True
            elif rule.fault_type == FaultType.MODIFY:
                body = body.replace(rule.search_bytes, rule.replace_bytes or b"")

        record.fault_applied = "+".join(faults) if faults else None
        record.status = status
        record.injected_delay = injected
        self._reply(record, injected, status=status, error=None,
                    gremlin_generated=gremlin_generated)
        return (status, None)

    def _reply(
        self,
        request_record: PredictedRecord,
        injected: float,
        status: _t.Optional[int],
        error: _t.Optional[str],
        gremlin_generated: bool,
    ) -> None:
        self.records.append(
            PredictedRecord(
                kind="reply",
                src=request_record.src,
                dst=request_record.dst,
                request_id=request_record.request_id,
                status=status if error is None else request_record.status,
                error=error,
                fault_applied=request_record.fault_applied,
                gremlin_generated=gremlin_generated,
                injected_delay=injected,
            )
        )

    def run_handler(self, service: str, request_id: str) -> tuple:
        """The callee's handler: fanout over children or static leaf."""
        children = self.topology.children(service)
        if not children:
            return (200, f"ok from {service}".encode("utf-8"))
        partial_ok = service in set(self.topology.partial_ok)
        failures: _t.List[str] = []
        for child in children:
            status, error = self.call_edge(service, child, request_id)
            if error is not None:
                failures.append(f"{child}:{error}")
            elif status is not None and status >= 500:
                failures.append(f"{child}:{status}")
            if failures and not partial_ok:
                body = f"dependency failure: {failures[0]}".encode("utf-8")
                return (500, body)
        if failures:
            return (200, ("degraded: " + ",".join(failures)).encode("utf-8"))
        return (200, b"ok")


def predict(case: FuzzCase) -> Prediction:
    """Predict records, load samples, and check verdicts for a case."""
    if not case.oracle_eligible:
        raise OracleError(f"case {case.case_id} is outside the oracle's domain")
    walker = _Walker(case)
    samples: _t.List[tuple] = []
    for index in range(1, case.workload.requests + 1):
        request_id = f"test-{index}"
        status, error = walker.call_edge(SOURCE_NAME, case.topology.entry, request_id)
        samples.append((request_id, status, error))
    verdicts = [
        _predict_check(spec, walker.records) for spec in case.checks
    ]
    return Prediction(records=walker.records, samples=samples, verdicts=verdicts)


def _predict_check(spec: dict, records: _t.List[PredictedRecord]) -> tuple:
    """Predict one check verdict from the predicted request records."""
    check = build_check(spec)
    regex = (
        None
        if check.id_pattern == "*"
        else re.compile(fnmatch.translate(check.id_pattern))
    )
    rlist = [
        record
        for record in records
        if record.kind == "request"
        and record.src == check.src
        and record.dst == check.dst
        and (regex is None or regex.match(record.request_id) is not None)
    ]
    if isinstance(check, EdgeStatusCheck):
        if not rlist:
            return (check.label(), False, True)
        matched = sum(
            1 for record in rlist
            if _observed_status(record, check.with_rule) == check.status
        )
        return (check.label(), matched >= check.num_match, False)
    if isinstance(check, EdgeCountCheck):
        return (check.label(), check._OPS[check.op](len(rlist), check.count), False)
    raise OracleError(f"no oracle for check kind {spec.get('kind')!r}")


def _observed_status(record: PredictedRecord, with_rule: bool) -> _t.Optional[int]:
    """Mirror of :func:`repro.core.queries.observed_status`."""
    if record.status is None:
        return None
    if not with_rule and (
        record.gremlin_generated
        or (record.fault_applied is not None and "abort" in record.fault_applied)
    ):
        return None
    return record.status
