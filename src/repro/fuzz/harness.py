"""Fuzz-campaign harness: fleet execution, repro artifacts, replay.

:func:`run_fuzz` drives a whole corpus — ``FuzzGenerator(seed)`` case
by case — through the differential battery on the shared campaign
worker fleet (:func:`~repro.campaign.fleet.run_fleet`), shrinks every
failing case to its minimal form, and writes one JSON repro artifact
per failure.  Both fleet backends are supported: ``threads`` (default)
runs cases in-process; ``processes`` pickles each
:class:`~repro.fuzz.spec.FuzzCase` to a spawn-isolated worker
interpreter and ships the :class:`~repro.fuzz.differential.CaseReport`
back, which parallelizes the CPU-bound battery across cores.  The
report is identical across backends and worker counts.  An artifact is self-contained: it embeds the full case
spec (topology, scenarios, checks, workload, deployment seed) plus the
expected mismatch kinds and trace digest, so
:func:`replay_artifact` can re-execute it bit-for-bit on any machine
and confirm the failure still reproduces.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import typing as _t

from repro.campaign.fleet import BACKENDS, ProcessWorkerSpec, run_fleet
from repro.errors import GremlinError
from repro.fuzz.differential import CaseReport, run_case
from repro.fuzz.generator import FuzzGenerator
from repro.fuzz.shrink import shrink
from repro.fuzz.spec import FuzzCase

__all__ = [
    "ARTIFACT_VERSION",
    "FuzzReport",
    "ReplayResult",
    "load_artifact",
    "replay_artifact",
    "run_fuzz",
    "write_artifact",
]

ARTIFACT_VERSION = 1


@dataclasses.dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz campaign."""

    seed: int
    cases: int
    #: Per-failure summaries (case_id, mismatches, artifact, shrink steps).
    failures: _t.List[dict] = dataclasses.field(default_factory=list)
    #: Cases whose oracle diff ran.
    oracle_checked: int = 0
    #: metamorphic check name -> number of cases it ran on.
    metamorphic_counts: _t.Dict[str, int] = dataclasses.field(default_factory=dict)
    wall_time: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "passed": self.passed,
            "failures": [dict(f) for f in self.failures],
            "oracle_checked": self.oracle_checked,
            "metamorphic_counts": dict(self.metamorphic_counts),
            "wall_time": self.wall_time,
        }

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.cases} cases,"
            f" {len(self.failures)} failing"
            f" ({self.oracle_checked} oracle-diffed) in {self.wall_time:.2f}s"
        ]
        for name, count in sorted(self.metamorphic_counts.items()):
            lines.append(f"  metamorphic {name}: {count} cases")
        for failure in self.failures:
            lines.append(
                f"  FAIL {failure['case_id']}:"
                f" {', '.join(failure['mismatch_kinds'])}"
            )
            if failure.get("artifact"):
                lines.append(f"       artifact: {failure['artifact']}")
        return "\n".join(lines)


def _process_case(
    worker_id: int, case: FuzzCase, context: _t.Optional[_t.Mapping]
) -> CaseReport:
    """Process-backend entry point: run one case in a worker interpreter.

    ``context`` is the (pickled) app registry; the returned
    :class:`CaseReport` is plain data, so it ships back to the parent
    unchanged — the fuzz verdict cannot depend on the backend.
    """
    try:
        return run_case(case, app_registry=context)
    except Exception as exc:  # noqa: BLE001 - fleet contract: never raise
        report = CaseReport(case=case, digest="")
        report.mismatches.append(
            {"kind": "harness/error", "detail": f"{type(exc).__name__}: {exc}"}
        )
        return report


def _crashed_case(case: FuzzCase, detail: str) -> CaseReport:
    """Parent-side conversion of a dead worker's case into a failing
    report, keeping the corpus fully accounted for."""
    report = CaseReport(case=case, digest="")
    report.mismatches.append(
        {"kind": "harness/crash", "detail": f"worker process died: {detail}"}
    )
    return report


def run_fuzz(
    seed: int,
    cases: int,
    *,
    workers: _t.Union[int, str] = 1,
    backend: str = "threads",
    app_registry: _t.Optional[_t.Mapping] = None,
    artifacts_dir: _t.Optional[str] = None,
    shrink_failures: bool = True,
    batch_size: int = 1,
    result_transport: _t.Optional[str] = None,
) -> FuzzReport:
    """Run the first ``cases`` cases of ``seed``'s corpus.

    Case generation, execution, and shrinking are all derived from
    ``seed`` alone, so the report is identical across machines, worker
    counts, fleet backends, and dispatch batch sizes.
    ``backend="processes"`` requires a picklable ``app_registry``
    (module-level builders, not lambdas); ``batch_size`` ships that
    many cases per worker dispatch to amortize pickle/pipe round-trips.
    """
    if backend not in BACKENDS:
        raise GremlinError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    started = time.perf_counter()
    generator = FuzzGenerator(seed, app_registry=app_registry)
    corpus = generator.generate(cases)

    def execute(worker_id: int, case: FuzzCase) -> CaseReport:
        return _process_case(worker_id, case, app_registry)

    if backend == "processes":
        registry = dict(app_registry) if app_registry is not None else None
        results = run_fleet(
            corpus,
            None,
            workers=workers,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=_process_case, context=registry, on_crash=_crashed_case
            ),
            batch_size=batch_size,
            result_transport=result_transport,
        )
    else:
        results = run_fleet(corpus, execute, workers=workers)
    report = FuzzReport(seed=seed, cases=cases)
    for position in range(len(corpus)):
        case_report = results[position]
        if case_report.oracle_checked:
            report.oracle_checked += 1
        for name in case_report.metamorphic_run:
            report.metamorphic_counts[name] = (
                report.metamorphic_counts.get(name, 0) + 1
            )
        if case_report.failed:
            report.failures.append(
                _handle_failure(
                    case_report,
                    app_registry=app_registry,
                    artifacts_dir=artifacts_dir,
                    shrink_failures=shrink_failures,
                )
            )
    report.wall_time = time.perf_counter() - started
    return report


def _handle_failure(
    case_report: CaseReport,
    *,
    app_registry: _t.Optional[_t.Mapping],
    artifacts_dir: _t.Optional[str],
    shrink_failures: bool,
) -> dict:
    """Shrink one failing case and persist its repro artifact."""
    final_report = case_report
    steps: _t.List[str] = []
    harness_error = any(
        m["kind"] == "harness/error" for m in case_report.mismatches
    )
    if shrink_failures and not harness_error:
        try:
            result = shrink(case_report.case, app_registry=app_registry)
        except Exception:  # noqa: BLE001 - keep the unshrunk repro on any hiccup
            pass
        else:
            final_report = result.report
            steps = result.steps
    failure = {
        "case_id": case_report.case.case_id,
        "mismatch_kinds": final_report.mismatch_kinds(),
        "shrink_steps": steps,
        "artifact": None,
    }
    if artifacts_dir is not None:
        os.makedirs(artifacts_dir, exist_ok=True)
        path = os.path.join(
            artifacts_dir, f"{case_report.case.case_id}.json"
        )
        write_artifact(path, final_report, shrink_steps=steps)
        failure["artifact"] = path
    return failure


# -- artifacts ----------------------------------------------------------------


def artifact_dict(report: CaseReport, shrink_steps: _t.Sequence[str] = ()) -> dict:
    """The self-contained JSON form of one (usually minimal) failure."""
    return {
        "version": ARTIFACT_VERSION,
        "case": report.case.to_dict(),
        "verdict": {
            "mismatch_kinds": report.mismatch_kinds(),
            "mismatches": [dict(m) for m in report.mismatches],
            "digest": report.digest,
        },
        "shrink_steps": list(shrink_steps),
    }


def write_artifact(
    path: str, report: CaseReport, shrink_steps: _t.Sequence[str] = ()
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact_dict(report, shrink_steps), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = data.get("version")
    if version != ARTIFACT_VERSION:
        raise GremlinError(
            f"unsupported artifact version {version!r} in {path}"
            f" (expected {ARTIFACT_VERSION})"
        )
    return data


@dataclasses.dataclass
class ReplayResult:
    """Outcome of re-executing a repro artifact."""

    report: CaseReport
    expected_kinds: _t.List[str]
    expected_digest: str

    @property
    def reproduced(self) -> bool:
        """True when the failure came back bit-for-bit: the same
        mismatch kinds from an execution with the same trace digest."""
        return (
            self.report.mismatch_kinds() == self.expected_kinds
            and self.report.digest == self.expected_digest
        )


def replay_artifact(
    data: _t.Union[str, dict], *, app_registry: _t.Optional[_t.Mapping] = None
) -> ReplayResult:
    """Re-run an artifact's case and compare against its recorded verdict."""
    if isinstance(data, str):
        data = load_artifact(data)
    case = FuzzCase.from_dict(data["case"])
    report = run_case(case, app_registry=app_registry)
    verdict = data.get("verdict", {})
    return ReplayResult(
        report=report,
        expected_kinds=list(verdict.get("mismatch_kinds", [])),
        expected_digest=verdict.get("digest", ""),
    )
