"""Fuzz-case specification: plain-data, JSON-round-trippable.

A :class:`FuzzCase` is the *entire* input of one differential trial —
topology, failure scenarios, assertion checks, workload, and the
deployment seed — expressed as plain data so that a failing case can be
written to a JSON repro artifact and replayed bit-for-bit later (same
spec + same seed = same virtual-time execution).

The spec layer is deliberately independent of the generator: the
shrinker edits specs directly, and hand-written specs are legal inputs
to the differential runner.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.assertions import CheckStatus, Combine
from repro.core.patterns import CheckResult, PatternCheck
from repro.core.queries import StoreLike, get_requests, observed_status
from repro.core.recipe import Recipe
from repro.core.scenarios import (
    AbortCalls,
    Crash,
    Degrade,
    DelayCalls,
    Disconnect,
    FailureScenario,
    FakeSuccess,
    GrayFailure,
    Hang,
    Misconfiguration,
    ModifyReplies,
    NetworkPartition,
    NoOpControl,
    Overload,
    ResourceExhaustion,
    RetryStorm,
)
from repro.errors import RecipeError
from repro.microservice.app import Application
from repro.microservice.graph import ApplicationGraph
from repro.microservice.handlers import fanout_handler
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceDefinition

__all__ = [
    "EdgeCountCheck",
    "EdgeStatusCheck",
    "FuzzCase",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "build_application",
    "build_check",
    "build_scenario",
    "check_to_spec",
    "scenario_to_spec",
]

#: Name of the traffic source attached to every fuzz deployment.  Part
#: of the logical graph (rules with ``src=SOURCE_NAME`` gate the entry
#: edge), so specs and the oracle refer to it by this constant.
SOURCE_NAME = "user"


# -- fuzz-specific pattern checks ---------------------------------------------
#
# The generated assertion sets are restricted to checks whose verdicts
# depend only on record *sequences and statuses*, never on timestamps —
# that is what lets the reference oracle predict them exactly without
# modeling virtual-clock arithmetic.  Both still drive the real query
# engine and (for EdgeStatusCheck) the real Combine/CheckStatus state
# machine, which is the layer under differential test.


class EdgeStatusCheck(PatternCheck):
    """At least ``num_match`` requests on one edge saw ``status``."""

    name = "edge_status"

    def __init__(
        self,
        src: str,
        dst: str,
        status: int,
        num_match: int = 1,
        with_rule: bool = True,
        id_pattern: str = "test-*",
    ) -> None:
        self.src = src
        self.dst = dst
        self.status = status
        self.num_match = num_match
        self.with_rule = with_rule
        self.id_pattern = id_pattern

    def run(
        self,
        store: StoreLike,
        since: _t.Optional[float] = None,
        until: _t.Optional[float] = None,
    ) -> CheckResult:
        rlist = get_requests(store, self.src, self.dst, self.id_pattern, since, until)
        if not rlist:
            return self._no_data(f"no requests observed {self.src}->{self.dst}")
        outcome = Combine(
            CheckStatus(self.status, self.num_match, self.with_rule)
        ).evaluate(rlist)
        detail = outcome.steps[0].detail
        return CheckResult(
            name=self.label(),
            passed=outcome.passed,
            detail=detail,
            data={"observed": len(rlist)},
        )

    def _no_data(self, detail: str) -> CheckResult:
        return CheckResult(self.label(), passed=False, detail=detail, inconclusive=True)

    def label(self) -> str:
        """The stable result name the oracle predicts against."""
        return (
            f"edge_status({self.src}->{self.dst}, {self.status}"
            f" x{self.num_match}, withRule={self.with_rule})"
        )


class EdgeCountCheck(PatternCheck):
    """The number of requests on one edge compares to ``count``.

    Unlike :class:`EdgeStatusCheck`, zero observations are meaningful
    (``== 0`` asserts an edge was *not* exercised), so there is no
    inconclusive outcome.
    """

    name = "edge_count"

    _OPS: dict[str, _t.Callable[[int, int], bool]] = {
        "==": lambda have, want: have == want,
        ">=": lambda have, want: have >= want,
        "<=": lambda have, want: have <= want,
    }

    def label(self) -> str:
        """The stable result name the oracle predicts against."""
        return f"edge_count({self.src}->{self.dst} {self.op} {self.count})"

    def __init__(
        self, src: str, dst: str, op: str, count: int, id_pattern: str = "test-*"
    ) -> None:
        if op not in self._OPS:
            raise RecipeError(f"edge_count op must be one of {sorted(self._OPS)}, got {op!r}")
        self.src = src
        self.dst = dst
        self.op = op
        self.count = count
        self.id_pattern = id_pattern

    def run(
        self,
        store: StoreLike,
        since: _t.Optional[float] = None,
        until: _t.Optional[float] = None,
    ) -> CheckResult:
        rlist = get_requests(store, self.src, self.dst, self.id_pattern, since, until)
        have = len(rlist)
        passed = self._OPS[self.op](have, self.count)
        return CheckResult(
            name=self.label(),
            passed=passed,
            detail=f"observed {have} requests, want {self.op} {self.count}",
            data={"observed": have},
        )


# -- scenario / check codecs ---------------------------------------------------

#: kind -> (class, ordered constructor parameter names).
_SCENARIO_KINDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "abort": (
        AbortCalls,
        ("src", "dst", "error", "pattern", "on", "probability", "max_matches", "skip_matches"),
    ),
    "delay": (
        DelayCalls,
        ("src", "dst", "interval", "pattern", "on", "probability", "max_matches", "skip_matches"),
    ),
    "modify": (ModifyReplies, ("src", "dst", "pattern", "replace_bytes", "id_pattern")),
    "disconnect": (Disconnect, ("service1", "service2", "error", "pattern")),
    "crash": (Crash, ("service", "pattern", "probability")),
    "hang": (Hang, ("service", "interval", "pattern")),
    "overload": (Overload, ("service", "abort_fraction", "interval", "error", "pattern")),
    "degrade": (Degrade, ("service", "interval", "pattern")),
    "partition": (NetworkPartition, ("group_a", "group_b", "pattern")),
    "fake_success": (FakeSuccess, ("service", "pattern", "replace_bytes", "id_pattern")),
    "retry_storm": (RetryStorm, ("service", "error", "pattern", "probability")),
    "gray_failure": (GrayFailure, ("service", "interval", "slow_fraction", "pattern")),
    "misconfiguration": (
        Misconfiguration,
        ("service", "mode", "error", "reply_pattern", "replace_bytes", "pattern"),
    ),
    "resource_exhaustion": (
        ResourceExhaustion,
        ("service", "interval", "shed_after", "error", "pattern"),
    ),
    "noop_control": (NoOpControl, ("service", "pattern")),
}

_CHECK_KINDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "edge_status": (EdgeStatusCheck, ("src", "dst", "status", "num_match", "with_rule", "id_pattern")),
    "edge_count": (EdgeCountCheck, ("src", "dst", "op", "count", "id_pattern")),
}

ScenarioSpec = _t.Dict[str, _t.Any]
CheckSpec = _t.Dict[str, _t.Any]


def _jsonable(value: _t.Any) -> _t.Any:
    if isinstance(value, bytes):  # Modify patterns may be bytes
        return value.decode("latin-1")
    return value


def scenario_to_spec(scenario: FailureScenario) -> ScenarioSpec:
    """Serialize one scenario to a ``{"kind", "params"}`` spec."""
    for kind, (cls, params) in _SCENARIO_KINDS.items():
        if type(scenario) is cls:
            return {
                "kind": kind,
                "params": {name: _jsonable(getattr(scenario, name)) for name in params},
            }
    raise RecipeError(f"unserializable scenario type {type(scenario).__name__}")


def build_scenario(spec: ScenarioSpec) -> FailureScenario:
    """Rebuild a scenario from its spec."""
    try:
        cls, _ = _SCENARIO_KINDS[spec["kind"]]
    except KeyError:
        raise RecipeError(f"unknown scenario kind {spec.get('kind')!r}") from None
    return cls(**spec["params"])


def check_to_spec(check: PatternCheck) -> CheckSpec:
    """Serialize one fuzz check to a ``{"kind", "params"}`` spec."""
    for kind, (cls, params) in _CHECK_KINDS.items():
        if type(check) is cls:
            return {
                "kind": kind,
                "params": {name: getattr(check, name) for name in params},
            }
    raise RecipeError(f"unserializable check type {type(check).__name__}")


def build_check(spec: CheckSpec) -> PatternCheck:
    """Rebuild a check from its spec."""
    try:
        cls, _ = _CHECK_KINDS[spec["kind"]]
    except KeyError:
        raise RecipeError(f"unknown check kind {spec.get('kind')!r}") from None
    return cls(**spec["params"])


# -- topology -----------------------------------------------------------------


@dataclasses.dataclass
class TopologySpec:
    """A logical topology: either a synthetic DAG or a named app.

    Synthetic DAGs (``kind="dag"``) are built from naive-policy
    services: interior services run :func:`fanout_handler` over their
    children (``partial_ok`` per service), leaves answer statically.
    With one replica per service, no timeouts/retries/breakers, and a
    sequential closed-loop workload the whole execution is a
    deterministic DFS — the domain where the reference oracle predicts
    outcomes exactly.

    Named apps (``kind="app"``, built via a registry the harness
    provides) carry real resilience policies, so they are exercised by
    the metamorphic checks only.
    """

    kind: str
    #: dag: service names in declaration order.
    services: _t.List[str] = dataclasses.field(default_factory=list)
    #: dag: (caller, callee) pairs; children are called in edge order.
    edges: _t.List[_t.Tuple[str, str]] = dataclasses.field(default_factory=list)
    #: Service the traffic source dials.
    entry: str = ""
    #: dag: services whose fanout degrades gracefully (partial_ok=True).
    partial_ok: _t.List[str] = dataclasses.field(default_factory=list)
    #: app: registry name.
    app: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("dag", "app"):
            raise RecipeError(f"topology kind must be 'dag' or 'app', got {self.kind!r}")
        self.edges = [tuple(edge) for edge in self.edges]

    def children(self, service: str) -> _t.List[str]:
        """A dag service's callees, in call order."""
        return [dst for src, dst in self.edges if src == service]

    def logical_graph(self) -> ApplicationGraph:
        """The dag's graph *including* the traffic-source edge.

        Edges are inserted grouped by caller in service-declaration
        order — exactly how :meth:`Application.logical_graph` inserts
        them at deploy time — because scenario decomposition iterates
        graph neighborhoods in insertion order and the oracle must
        derive the *same rule order* as the real control plane.  The
        traffic-source edge comes last, mirroring
        ``Deployment.add_traffic_source``.
        """
        graph = ApplicationGraph()
        for service in self.services:
            graph.add_service(service)
        for service in self.services:
            for child in self.children(service):
                graph.add_dependency(service, child)
        graph.add_dependency(SOURCE_NAME, self.entry)
        return graph

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "services": list(self.services),
            "edges": [list(edge) for edge in self.edges],
            "entry": self.entry,
            "partial_ok": list(self.partial_ok),
            "app": self.app,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        return cls(
            kind=data["kind"],
            services=list(data.get("services", [])),
            edges=[tuple(edge) for edge in data.get("edges", [])],
            entry=data.get("entry", ""),
            partial_ok=list(data.get("partial_ok", [])),
            app=data.get("app", ""),
        )


def build_application(
    topology: TopologySpec,
    app_registry: _t.Optional[_t.Mapping[str, _t.Callable[[], Application]]] = None,
) -> Application:
    """Materialize a topology spec into a deployable Application."""
    if topology.kind == "app":
        if app_registry is None or topology.app not in app_registry:
            raise RecipeError(f"unknown app topology {topology.app!r}")
        return app_registry[topology.app]()
    application = Application(f"fuzz-dag-{len(topology.services)}")
    partial = set(topology.partial_ok)
    for service in topology.services:
        children = topology.children(service)
        if children:
            application.add_service(
                ServiceDefinition(
                    service,
                    handler=fanout_handler(children, partial_ok=service in partial),
                    dependencies={child: PolicySpec.naive() for child in children},
                )
            )
        else:
            application.add_service(ServiceDefinition(service))
    return application


# -- workload -----------------------------------------------------------------


@dataclasses.dataclass
class WorkloadSpec:
    """Closed-loop workload parameters (sequential => deterministic)."""

    requests: int = 4
    think_time: float = 0.0

    def to_dict(self) -> dict:
        return {"requests": self.requests, "think_time": self.think_time}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(requests=data["requests"], think_time=data.get("think_time", 0.0))


# -- the case -----------------------------------------------------------------


@dataclasses.dataclass
class FuzzCase:
    """One complete differential-fuzzing trial, as plain data."""

    case_id: str
    seed: int
    topology: TopologySpec
    scenarios: _t.List[ScenarioSpec]
    checks: _t.List[CheckSpec] = dataclasses.field(default_factory=list)
    workload: WorkloadSpec = dataclasses.field(default_factory=WorkloadSpec)

    @property
    def deterministic(self) -> bool:
        """True when no rule can take a fractional probability draw.

        ``probability`` 0 and 1 keep execution fully deterministic
        (p=1 draws nothing; p=0 draws but never applies), so exact
        trace prediction and digest-comparison metamorphic checks are
        only run on such cases.
        """
        for spec in self.scenarios:
            params = spec["params"]
            if spec["kind"] == "overload":
                fraction = params.get("abort_fraction", 0.25)
                if 0.0 < fraction < 1.0:
                    return False
            elif spec["kind"] == "gray_failure":
                fraction = params.get("slow_fraction", 1.0)
                if 0.0 < fraction < 1.0:
                    return False
            else:
                probability = params.get("probability", 1.0)
                if 0.0 < probability < 1.0:
                    return False
        return True

    @property
    def oracle_eligible(self) -> bool:
        """True when the reference oracle can predict this case exactly."""
        return self.topology.kind == "dag" and self.deterministic

    def recipe(self) -> Recipe:
        """The case's scenarios + checks as a real :class:`Recipe`."""
        return Recipe(
            name=self.case_id,
            scenarios=[build_scenario(spec) for spec in self.scenarios],
            checks=[build_check(spec) for spec in self.checks],
        )

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "scenarios": [dict(spec, params=dict(spec["params"])) for spec in self.scenarios],
            "checks": [dict(spec, params=dict(spec["params"])) for spec in self.checks],
            "workload": self.workload.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            case_id=data["case_id"],
            seed=data["seed"],
            topology=TopologySpec.from_dict(data["topology"]),
            scenarios=[dict(spec, params=dict(spec["params"])) for spec in data["scenarios"]],
            checks=[dict(spec, params=dict(spec["params"])) for spec in data.get("checks", [])],
            workload=WorkloadSpec.from_dict(data.get("workload", {"requests": 4})),
        )
