"""Differential runner: execute a fuzz case for real and diff it.

One :func:`run_case` call runs a battery against a single
:class:`~repro.fuzz.spec.FuzzCase`:

* **Oracle diff** (oracle-eligible cases only): the case executes on
  the real stack — deploy, program agents, drive load, drain logs,
  evaluate checks — and the observed trace, load samples, and check
  verdicts are diffed field-by-field against the reference oracle's
  prediction (:mod:`repro.fuzz.oracle`).
* **Metamorphic checks** (domain chosen per case):

  - *matcher-strategy*: re-running with the prefix-index and compiled
    dispatch-table matchers must produce byte-identical trace digests
    — every strategy consumes probability draws identically given the
    same seeded RNG.
  - *scheduler*: re-running on the reference heap scheduler must
    produce a byte-identical digest — the calendar queue implements
    the same (timestamp, sequence) total order.
  - *zero-probability*: appending a ``probability=0`` abort rule on
    the entry edge must not change the digest (deterministic cases
    only: elsewhere the extra draw legitimately shifts the stream).
  - *rule-order*: installing the translated rules in reverse order
    must not change the digest when no two rules compete for the same
    ``(src, dst, direction)`` slot — first-match-wins degenerates to
    at-most-one-match.
  - *shuffle*: re-ingesting the records into a fresh store in
    shuffled order must leave every check verdict unchanged.

Each failed comparison becomes one mismatch dict ``{"kind", "detail"}``
with kinds like ``"oracle/trace"`` or ``"metamorphic/rule-order"`` —
the shrinker minimizes cases while preserving at least one mismatch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import time
import typing as _t

from repro.agent.rules import fresh_rule_ids
from repro.core.gremlin import Gremlin
from repro.core.scenarios import AbortCalls
from repro.fuzz.oracle import OracleError, Prediction, predict
from repro.fuzz.spec import (
    SOURCE_NAME,
    FuzzCase,
    build_application,
    build_check,
    build_scenario,
)
from repro.loadgen import ClosedLoopLoad
from repro.logstore.store import EventStore
from repro.observability.trace import reconstruct_from_records, trace_shape_digest

__all__ = ["CaseReport", "Execution", "execute_case", "run_case", "shape_digests_of"]


@dataclasses.dataclass
class Execution:
    """Everything one real execution of a case produced."""

    #: Oracle-comparable record tuples, in store (= timestamp) order:
    #: (kind, src, dst, request_id, status, error, fault_applied,
    #: gremlin_generated, round(injected_delay, 9)).
    records: _t.List[tuple]
    #: Per top-level request: (request_id, status, error).
    samples: _t.List[tuple]
    #: Per check: (label, passed, inconclusive).
    verdicts: _t.List[tuple]
    #: Strict digest over records *including* timestamps/latency plus
    #: samples and verdicts — what replay and the digest-equality
    #: metamorphic checks compare bit-for-bit.
    digest: str
    #: The live store (for the shuffle check).
    store: EventStore
    #: (src, dst, on) per installed rule, in install order.
    rule_edges: _t.List[tuple]
    #: request_id -> causal-tree shape digest (observability layer's
    #: :func:`trace_shape_digest`) — the ID-insensitive view the shape
    #: metamorphic check and the exploration coverage signal consume.
    shape_digests: _t.Dict[str, str] = dataclasses.field(default_factory=dict)


def execute_case(
    case: FuzzCase,
    *,
    matcher_strategy: str = "linear",
    scheduler: _t.Optional[str] = None,
    rule_transform: _t.Optional[_t.Callable[[list], list]] = None,
    extra_scenarios: _t.Sequence = (),
    app_registry: _t.Optional[_t.Mapping] = None,
) -> Execution:
    """Run one case on the real stack and capture its full outcome.

    ``rule_transform`` edits the translated rule list before the
    orchestrator installs it (metamorphic rule-order check);
    ``extra_scenarios`` are appended after the case's own scenarios
    (metamorphic zero-probability check); ``scheduler`` picks the kernel
    scheduler implementation (metamorphic scheduler check).
    """
    application = build_application(case.topology, app_registry=app_registry)
    deployment = application.deploy(
        seed=case.seed, matcher_strategy=matcher_strategy, scheduler=scheduler
    )
    source = deployment.add_traffic_source(case.topology.entry, name=SOURCE_NAME)
    gremlin = Gremlin(deployment)
    sim = deployment.sim

    scenarios = [build_scenario(spec) for spec in case.scenarios]
    scenarios.extend(extra_scenarios)
    # Scoped numbering: every execution's rules are 1..N, so artifacts
    # and digests cannot depend on fleet backend or interpreter history.
    with fresh_rule_ids():
        rules = gremlin.translator.translate(scenarios)
    if rule_transform is not None:
        rules = rule_transform(list(rules))
    gremlin.orchestrator.apply(rules)

    load = ClosedLoopLoad(
        num_requests=case.workload.requests, think_time=case.workload.think_time
    )
    sim.process(load.driver(source), name=f"load/{case.case_id}")
    sim.run()
    deployment.pipeline.flush()

    store = deployment.store
    verdicts = []
    for spec in case.checks:
        check = build_check(spec)
        result = check.run(store)
        verdicts.append((check.label(), result.passed, result.inconclusive))

    records = [
        (
            record.kind,
            record.src,
            record.dst,
            record.request_id,
            record.status,
            record.error,
            record.fault_applied,
            record.gremlin_generated,
            round(record.injected_delay, 9),
        )
        for record in store.all_records()
    ]
    samples = [
        (sample.request_id, sample.status, sample.error)
        for sample in load.result.samples
    ]
    strict = [
        tuple(core) + (round(record.timestamp, 9), _round(record.latency))
        for core, record in zip(records, store.all_records())
    ]
    digest = hashlib.sha256(
        json.dumps(
            {"records": strict, "samples": samples, "verdicts": verdicts},
            separators=(",", ":"),
            default=str,
        ).encode("utf-8")
    ).hexdigest()
    return Execution(
        records=records,
        samples=samples,
        verdicts=verdicts,
        digest=digest,
        store=store,
        rule_edges=[(rule.src, rule.dst, rule.on) for rule in rules],
        shape_digests=shape_digests_of(store),
    )


def shape_digests_of(store: EventStore) -> _t.Dict[str, str]:
    """Per-request causal-tree shape digests for a whole store."""
    by_request: _t.Dict[str, list] = {}
    for record in store.all_records():
        if record.request_id is not None:
            by_request.setdefault(record.request_id, []).append(record)
    return {
        request_id: trace_shape_digest(
            reconstruct_from_records(request_id, group)
        )
        for request_id, group in by_request.items()
    }


def _round(value: _t.Optional[float]) -> _t.Optional[float]:
    return None if value is None else round(value, 9)


@dataclasses.dataclass
class CaseReport:
    """The differential battery's verdict on one case."""

    case: FuzzCase
    digest: str
    #: Each entry: {"kind": "oracle/trace" | ..., "detail": str}.
    mismatches: _t.List[dict] = dataclasses.field(default_factory=list)
    #: True when the oracle diff ran (case was oracle-eligible).
    oracle_checked: bool = False
    #: Metamorphic check names that ran on this case.
    metamorphic_run: _t.List[str] = dataclasses.field(default_factory=list)
    wall_time: float = 0.0

    @property
    def failed(self) -> bool:
        return bool(self.mismatches)

    def mismatch_kinds(self) -> _t.List[str]:
        return [mismatch["kind"] for mismatch in self.mismatches]

    def to_dict(self) -> dict:
        return {
            "case_id": self.case.case_id,
            "digest": self.digest,
            "mismatches": [dict(m) for m in self.mismatches],
            "oracle_checked": self.oracle_checked,
            "metamorphic_run": list(self.metamorphic_run),
            "wall_time": self.wall_time,
        }


def _diff_sequences(
    kind: str, expected: _t.Sequence, observed: _t.Sequence
) -> _t.Optional[dict]:
    """First point of divergence between two tuple sequences, or None."""
    if list(expected) == list(observed):
        return None
    for index, (want, have) in enumerate(zip(expected, observed)):
        if want != have:
            return {
                "kind": kind,
                "detail": (
                    f"index {index}: expected {want!r}, observed {have!r}"
                ),
            }
    return {
        "kind": kind,
        "detail": (
            f"length mismatch: expected {len(expected)} entries,"
            f" observed {len(observed)}"
        ),
    }


def _oracle_mismatches(prediction: Prediction, base: Execution) -> _t.List[dict]:
    mismatches = []
    predicted = [record.key() for record in prediction.records]
    for kind, want, have in (
        ("oracle/trace", predicted, base.records),
        ("oracle/samples", prediction.samples, base.samples),
        ("oracle/verdicts", prediction.verdicts, base.verdicts),
    ):
        found = _diff_sequences(kind, want, have)
        if found is not None:
            mismatches.append(found)
    return mismatches


def run_case(
    case: FuzzCase, *, app_registry: _t.Optional[_t.Mapping] = None
) -> CaseReport:
    """Run the full differential battery against one case."""
    started = time.perf_counter()
    base = execute_case(case, app_registry=app_registry)
    report = CaseReport(case=case, digest=base.digest)

    # -- oracle diff ----------------------------------------------------------
    if case.oracle_eligible:
        try:
            prediction = predict(case)
        except OracleError as exc:
            report.mismatches.append(
                {"kind": "oracle/error", "detail": f"{exc}"}
            )
        else:
            report.oracle_checked = True
            report.mismatches.extend(_oracle_mismatches(prediction, base))

    # -- metamorphic: matcher strategy ---------------------------------------
    # Applies to every case: all strategies consume probability draws
    # identically by construction, so even fractional-probability cases
    # must produce identical digests.  "table" is the production
    # default; "prefix" keeps the index path honest.
    report.metamorphic_run.append("matcher-strategy")
    for strategy in ("prefix", "table"):
        other = execute_case(
            case, matcher_strategy=strategy, app_registry=app_registry
        )
        if other.digest != base.digest:
            report.mismatches.append(
                {
                    "kind": "metamorphic/matcher-strategy",
                    "detail": f"[{strategy}] {_strategy_detail(base, other)}",
                }
            )

    # -- metamorphic: kernel scheduler ---------------------------------------
    # The calendar-queue and heap schedulers implement the same total
    # order (timestamp, schedule sequence), so every case must produce a
    # byte-identical digest on both — timestamps, record order, RNG
    # draws, verdicts, everything.
    report.metamorphic_run.append("scheduler")
    heap_run = execute_case(case, scheduler="heap", app_registry=app_registry)
    if heap_run.digest != base.digest:
        report.mismatches.append(
            {
                "kind": "metamorphic/scheduler",
                "detail": _strategy_detail(base, heap_run),
            }
        )

    # -- metamorphic: zero-probability rule ----------------------------------
    # A probability-0 rule matches structurally but never applies; on
    # deterministic cases (no other rule draws) it must be a no-op.
    if case.deterministic:
        report.metamorphic_run.append("zero-probability")
        noop = AbortCalls(
            SOURCE_NAME, case.topology.entry, probability=0.0
        )
        ghosted = execute_case(
            case, extra_scenarios=[noop], app_registry=app_registry
        )
        if ghosted.digest != base.digest:
            report.mismatches.append(
                {
                    "kind": "metamorphic/zero-probability",
                    "detail": _strategy_detail(base, ghosted),
                }
            )

    # -- metamorphic: rule order ---------------------------------------------
    # With at most one rule per (src, dst, direction) slot, first-match-
    # wins cannot depend on install order.
    edges = base.rule_edges
    if edges and len(set(edges)) == len(edges):
        report.metamorphic_run.append("rule-order")
        reordered = execute_case(
            case,
            rule_transform=lambda rules: list(reversed(rules)),
            app_registry=app_registry,
        )
        if reordered.digest != base.digest:
            report.mismatches.append(
                {
                    "kind": "metamorphic/rule-order",
                    "detail": _strategy_detail(base, reordered),
                }
            )

    # -- metamorphic: ingestion-order shuffle --------------------------------
    # Check verdicts must not depend on the order records landed in the
    # store (logstash batches arrive out of order in the real system).
    report.metamorphic_run.append("shuffle")
    shuffled_store = EventStore(strategy="indexed")
    shuffled = list(base.store.all_records())
    random.Random(case.seed).shuffle(shuffled)
    shuffled_store.extend(shuffled)
    shuffled_verdicts = []
    for spec in case.checks:
        check = build_check(spec)
        result = check.run(shuffled_store)
        shuffled_verdicts.append((check.label(), result.passed, result.inconclusive))
    found = _diff_sequences(
        "metamorphic/shuffle", base.verdicts, shuffled_verdicts
    )
    if found is not None:
        report.mismatches.append(found)
    # Shape digests are span-ID- and order-insensitive by construction,
    # so reassembling trees from the shuffled store must reproduce every
    # per-request shape exactly.
    shuffled_shapes = shape_digests_of(shuffled_store)
    if shuffled_shapes != base.shape_digests:
        diverged = sorted(
            rid
            for rid in set(base.shape_digests) | set(shuffled_shapes)
            if base.shape_digests.get(rid) != shuffled_shapes.get(rid)
        )
        report.mismatches.append(
            {
                "kind": "metamorphic/shuffle-shape",
                "detail": (
                    "trace shape digests changed under ingestion-order"
                    f" shuffle for request(s) {diverged[:5]}"
                ),
            }
        )

    report.wall_time = time.perf_counter() - started
    return report


def _strategy_detail(base: Execution, other: Execution) -> str:
    """Localize a digest divergence for the repro artifact."""
    found = _diff_sequences("", base.records, other.records)
    if found is not None:
        return f"trace diverged: {found['detail']}"
    for name, want, have in (
        ("samples", base.samples, other.samples),
        ("verdicts", base.verdicts, other.verdicts),
    ):
        found = _diff_sequences("", want, have)
        if found is not None:
            return f"{name} diverged: {found['detail']}"
    return (
        "trace/samples/verdicts identical but digests differ"
        " (timestamp or latency drift)"
    )
