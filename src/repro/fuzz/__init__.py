"""Differential fuzzing of the whole Gremlin stack.

The fuzzer generates random logical topologies, failure recipes, and
workloads from a master seed (:mod:`~repro.fuzz.generator`), predicts
the expected outcome straight from the rule semantics with a reference
oracle (:mod:`~repro.fuzz.oracle`), executes each case on the real
deploy/inject/load/check stack, and diffs the two
(:mod:`~repro.fuzz.differential`) — plus metamorphic checks that need
no oracle at all.  Failing cases shrink to minimal JSON repro
artifacts (:mod:`~repro.fuzz.shrink`, :mod:`~repro.fuzz.harness`) that
replay bit-for-bit from their embedded seed.
"""

from repro.fuzz.differential import CaseReport, Execution, execute_case, run_case
from repro.fuzz.generator import FuzzGenerator
from repro.fuzz.harness import (
    ARTIFACT_VERSION,
    FuzzReport,
    ReplayResult,
    load_artifact,
    replay_artifact,
    run_fuzz,
    write_artifact,
)
from repro.fuzz.oracle import OracleError, PredictedRecord, Prediction, predict
from repro.fuzz.shrink import ShrinkResult, shrink
from repro.fuzz.spec import (
    SOURCE_NAME,
    EdgeCountCheck,
    EdgeStatusCheck,
    FuzzCase,
    TopologySpec,
    WorkloadSpec,
    build_application,
    build_check,
    build_scenario,
    check_to_spec,
    scenario_to_spec,
)

__all__ = [
    "ARTIFACT_VERSION",
    "CaseReport",
    "EdgeCountCheck",
    "EdgeStatusCheck",
    "Execution",
    "FuzzCase",
    "FuzzGenerator",
    "FuzzReport",
    "OracleError",
    "PredictedRecord",
    "Prediction",
    "ReplayResult",
    "SOURCE_NAME",
    "ShrinkResult",
    "TopologySpec",
    "WorkloadSpec",
    "build_application",
    "build_check",
    "build_scenario",
    "check_to_spec",
    "execute_case",
    "load_artifact",
    "predict",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "scenario_to_spec",
    "shrink",
    "write_artifact",
]
