"""Wire-format codec: HTTP messages <-> bytes.

The transport carries opaque ``bytes``; this codec gives those bytes an
HTTP/1.1-like shape.  Having a real wire format matters for fidelity:
the ``Modify`` fault primitive rewrites *bytes* on the wire (paper
Table 2), and a sufficiently destructive rewrite must be able to
produce an *unparseable* message — the "invalid responses" entry of the
fault model — which the receiving side surfaces as ``CodecError``.

Format (one message per transport payload, body length from
``Content-Length``)::

    GET /search?q=x HTTP/1.1\r\n
    X-Gremlin-Request-Id: test-42\r\n
    Content-Length: 5\r\n
    \r\n
    hello
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse, Message
from repro.http.status import reason_phrase

__all__ = ["encode", "decode", "encode_request", "encode_response", "decode_request", "decode_response"]

_CRLF = b"\r\n"
_VERSION = b"HTTP/1.1"


def encode_request(request: HttpRequest) -> bytes:
    """Serialize a request to its wire form."""
    lines = [f"{request.method} {request.uri} HTTP/1.1".encode("ascii")]
    lines.extend(_encode_headers(request.headers, len(request.body)))
    lines.append(b"")
    head = _CRLF.join(lines) + _CRLF
    return head + request.body


def encode_response(response: HttpResponse) -> bytes:
    """Serialize a response to its wire form."""
    status_line = f"HTTP/1.1 {response.status} {reason_phrase(response.status)}".encode("ascii")
    lines = [status_line]
    lines.extend(_encode_headers(response.headers, len(response.body)))
    lines.append(b"")
    head = _CRLF.join(lines) + _CRLF
    return head + response.body


def encode(message: Message) -> bytes:
    """Serialize either message kind."""
    if isinstance(message, HttpRequest):
        return encode_request(message)
    if isinstance(message, HttpResponse):
        return encode_response(message)
    raise TypeError(f"cannot encode {type(message).__name__}")


def decode(payload: bytes) -> Message:
    """Parse a wire payload into a request or response.

    Raises :class:`~repro.errors.CodecError` for malformed payloads —
    e.g. after a Modify fault corrupted the start line.
    """
    start_line = payload.split(_CRLF, 1)[0]
    if start_line.startswith(b"HTTP/"):
        return decode_response(payload)
    return decode_request(payload)


def decode_request(payload: bytes) -> HttpRequest:
    """Parse a request; raises :class:`CodecError` on malformed input."""
    head, body = _split_head(payload)
    lines = head.split(_CRLF)
    parts = lines[0].split(b" ", 2)
    if len(parts) != 3 or parts[2] != _VERSION:
        raise CodecError(f"malformed request line: {lines[0]!r}")
    method = parts[0].decode("ascii", errors="replace")
    uri = parts[1].decode("ascii", errors="replace")
    headers = _decode_headers(lines[1:])
    body = _take_body(headers, body)
    try:
        return HttpRequest(method, uri, headers, body)
    except ValueError as exc:
        raise CodecError(f"invalid request: {exc}") from exc


def decode_response(payload: bytes) -> HttpResponse:
    """Parse a response; raises :class:`CodecError` on malformed input."""
    head, body = _split_head(payload)
    lines = head.split(_CRLF)
    parts = lines[0].split(b" ", 2)
    if len(parts) < 2 or parts[0] != _VERSION:
        raise CodecError(f"malformed status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise CodecError(f"malformed status code: {parts[1]!r}") from None
    headers = _decode_headers(lines[1:])
    body = _take_body(headers, body)
    try:
        return HttpResponse(status, headers, body)
    except ValueError as exc:
        raise CodecError(f"invalid response: {exc}") from exc


# -- helpers ------------------------------------------------------------------


def _encode_headers(headers: Headers, body_len: int) -> list[bytes]:
    lines = []
    for key, value in headers.items():
        if key.lower() == "content-length":
            continue  # always derived from the actual body
        lines.append(f"{key}: {value}".encode("utf-8"))
    lines.append(f"Content-Length: {body_len}".encode("ascii"))
    return lines


def _split_head(payload: bytes) -> tuple[bytes, bytes]:
    if not isinstance(payload, (bytes, bytearray)):
        raise CodecError(f"payload must be bytes, got {type(payload).__name__}")
    marker = payload.find(_CRLF + _CRLF)
    if marker < 0:
        raise CodecError("payload has no header/body separator")
    return bytes(payload[:marker]), bytes(payload[marker + 4 :])


def _decode_headers(lines: list[bytes]) -> Headers:
    headers = Headers()
    for line in lines:
        if not line:
            continue
        key, sep, value = line.partition(b":")
        if not sep:
            raise CodecError(f"malformed header line: {line!r}")
        headers[key.decode("utf-8", errors="replace").strip()] = (
            value.decode("utf-8", errors="replace").strip()
        )
    return headers


def _take_body(headers: Headers, body: bytes) -> bytes:
    declared = headers.get("Content-Length")
    if declared is None:
        return body
    try:
        length = int(declared)
    except ValueError:
        raise CodecError(f"malformed Content-Length: {declared!r}") from None
    if length < 0 or length > len(body):
        raise CodecError(f"Content-Length {length} exceeds payload ({len(body)} bytes)")
    return body[:length]
