"""HTTP client over the simulated transport.

:meth:`HttpClient.call` is a *generator subroutine*: service handler
code running inside a simulation process invokes it with
``yield from``.  It opens a connection, sends the encoded request,
awaits the response, and surfaces every fault-model observable as an
exception (network errors, per-call timeout, unparseable response).

This client is deliberately *naive* — no retries, no breaker, no
default timeout.  The resilience patterns live one layer up, in
:mod:`repro.microservice.resilience`, precisely so Gremlin tests can
distinguish services that adopted the patterns from services that did
not.
"""

from __future__ import annotations

import typing as _t

from repro.errors import RequestTimeoutError
from repro.http.codec import decode_response, encode_request
from repro.http.message import HttpRequest, HttpResponse
from repro.network.address import Address
from repro.network.transport import ConnectionEnd, Host
from repro.simulation.events import AnyOf, SimEvent
from repro.simulation.kernel import Simulator

__all__ = ["HttpClient", "await_with_deadline"]


def await_with_deadline(
    sim: Simulator, event: SimEvent, deadline: float | None
) -> _t.Generator[SimEvent, _t.Any, _t.Any]:
    """Wait for ``event``, but no later than absolute time ``deadline``.

    Generator subroutine (use with ``yield from``).  Returns the event's
    value; raises :class:`RequestTimeoutError` if the deadline passes
    first; propagates the event's failure exception otherwise.
    """
    if deadline is None:
        result = yield event
        return result
    remaining = deadline - sim.now
    if remaining <= 0:
        raise RequestTimeoutError(elapsed=0.0)
    timer = sim.timeout(remaining)
    winner = yield AnyOf(sim, [event, timer])
    if event in winner:
        return winner[event]
    raise RequestTimeoutError(elapsed=remaining)


class HttpClient:
    """One-connection-per-request HTTP client for a simulated host."""

    def __init__(self, host: Host, default_timeout: float | None = None) -> None:
        self.host = host
        self.default_timeout = default_timeout

    @property
    def sim(self) -> Simulator:
        """The simulator the owning host runs on."""
        return self.host.sim

    def call(
        self,
        dst: Address,
        request: HttpRequest,
        timeout: float | None = None,
    ) -> _t.Generator[SimEvent, _t.Any, HttpResponse]:
        """Send ``request`` to ``dst`` and return the response.

        Generator subroutine (use with ``yield from`` inside a process).

        ``timeout`` bounds the *whole* call — connect plus response —
        in virtual seconds; ``None`` falls back to the client default,
        and if that is also ``None`` the call waits forever (which is
        exactly the missing-timeout anti-pattern Fig 5 exposes).

        Raises
        ------
        RequestTimeoutError
            The deadline expired before the response arrived.
        NetworkError subclasses
            Connection refused / reset / partitioned, per the transport.
        CodecError
            The response bytes could not be parsed (Modify-corrupted).
        """
        sim = self.sim
        budget = self.default_timeout if timeout is None else timeout
        deadline = None if budget is None else sim.now + budget

        conn: ConnectionEnd | None = None
        try:
            conn_ev = self.host.connect(dst)
            conn = yield from await_with_deadline(sim, conn_ev, deadline)
            conn.send(encode_request(request))
            payload = yield from await_with_deadline(sim, conn.recv(), deadline)
        finally:
            # Abandon the connection whether we succeeded, timed out or
            # hit a transport error; late server responses are dropped.
            if conn is not None and not conn.closed:
                conn.close()
        return decode_response(payload)

    def get(
        self, dst: Address, uri: str, timeout: float | None = None, **header_kwargs: str
    ) -> _t.Generator[SimEvent, _t.Any, HttpResponse]:
        """Shorthand for a GET call (generator subroutine)."""
        request = HttpRequest("GET", uri, dict(header_kwargs))
        response = yield from self.call(dst, request, timeout=timeout)
        return response
