"""HTTP server over the simulated transport.

A server binds a port and spawns one simulation process per inbound
connection; each process loops request -> handler -> response, so a
single connection can carry sequential requests (keep-alive) while
concurrent connections are served in parallel.

Handlers are generator functions ``handler(request) -> HttpResponse``
that may ``yield`` events (e.g. make downstream calls via
:class:`~repro.http.client.HttpClient`).  Handler exceptions become
``500`` responses; unparseable request bytes become ``400``.
"""

from __future__ import annotations

import typing as _t

from repro.errors import CodecError
from repro.http import status as http_status
from repro.http.codec import decode_request, encode_response
from repro.http.headers import REQUEST_ID_HEADER
from repro.http.message import HttpRequest, HttpResponse
from repro.network.transport import ConnectionEnd, Host, Listener
from repro.simulation.kernel import Simulator
from repro.simulation.resources import ChannelClosed

__all__ = ["HttpServer", "Handler"]

#: A handler is a generator function from request to response.
Handler = _t.Callable[[HttpRequest], _t.Generator[_t.Any, _t.Any, HttpResponse]]


class HttpServer:
    """Binds ``port`` on ``host`` and serves ``handler``."""

    def __init__(self, host: Host, port: int, handler: Handler, name: str | None = None) -> None:
        self.host = host
        self.port = port
        self.handler = handler
        self.name = name or f"{host.name}:{port}"
        self._listener: Listener | None = None
        #: Count of requests served, for tests and capacity checks.
        self.requests_served = 0

    @property
    def sim(self) -> Simulator:
        """The simulator the owning host runs on."""
        return self.host.sim

    @property
    def running(self) -> bool:
        """True while the listener is bound."""
        return self._listener is not None and not self._listener.closed

    def start(self) -> "HttpServer":
        """Bind the port and begin accepting connections."""
        listener = self.host.listen(self.port)
        listener.on_connect(self._spawn)
        self._listener = listener
        return self

    def stop(self) -> None:
        """Unbind; existing connections keep draining, new ones refused."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- internals --------------------------------------------------------------

    def _spawn(self, conn: ConnectionEnd) -> None:
        self.sim.process(self._serve(conn), name=f"{self.name}/serve")

    def _serve(self, conn: ConnectionEnd) -> _t.Generator:
        while True:
            try:
                payload = yield conn.recv()
            except (ChannelClosed, Exception):  # noqa: BLE001 - reset/close both end the loop
                break
            response = yield from self._dispatch(payload)
            if conn.closed:
                break
            try:
                conn.send(encode_response(response))
            except Exception:  # noqa: BLE001 - peer vanished mid-response
                break
            self.requests_served += 1

    def _dispatch(self, payload: bytes) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
        try:
            request = decode_request(payload)
        except CodecError as exc:
            return HttpResponse.error(http_status.BAD_REQUEST, str(exc))
        try:
            response = yield from self.handler(request)
        except Exception as exc:  # noqa: BLE001 - handler crash => 500
            response = HttpResponse.error(
                http_status.INTERNAL_SERVER_ERROR,
                f"handler error: {type(exc).__name__}: {exc}",
                request_id=request.request_id,
            )
        if not isinstance(response, HttpResponse):
            response = HttpResponse.error(
                http_status.INTERNAL_SERVER_ERROR,
                f"handler returned {type(response).__name__}, expected HttpResponse",
                request_id=request.request_id,
            )
        # Echo the request ID so flows stay traceable end to end.
        rid = request.request_id
        if rid is not None and REQUEST_ID_HEADER not in response.headers:
            response.headers[REQUEST_ID_HEADER] = rid
        return response

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<HttpServer {self.name} {state}>"
