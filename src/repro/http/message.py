"""HTTP request/response message objects.

These are the Layer-7 payloads the Gremlin agents intercept, match,
manipulate and log (paper Table 2: "Messages in this context are
application layer payloads (Layer 7), without TCP/IP headers").
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.http.headers import REQUEST_ID_HEADER, Headers
from repro.http.status import is_error, is_success, reason_phrase

__all__ = ["HttpRequest", "HttpResponse"]

_METHODS = ("GET", "HEAD", "POST", "PUT", "PATCH", "DELETE", "OPTIONS")


@dataclasses.dataclass
class HttpRequest:
    """An HTTP request.

    ``body`` is ``bytes`` so Modify faults operate on real payload
    bytes.  ``headers`` carries the propagated request ID.
    """

    method: str
    uri: str
    headers: Headers = dataclasses.field(default_factory=Headers)
    body: bytes = b""

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValueError(f"unsupported HTTP method {self.method!r}")
        if not self.uri.startswith("/"):
            raise ValueError(f"request URI must start with '/', got {self.uri!r}")
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)
        if isinstance(self.body, str):
            self.body = self.body.encode("utf-8")

    @property
    def request_id(self) -> str | None:
        """The propagated request ID, or None for untraced traffic."""
        return self.headers.get(REQUEST_ID_HEADER)

    @request_id.setter
    def request_id(self, value: str) -> None:
        self.headers[REQUEST_ID_HEADER] = value

    def copy(self) -> "HttpRequest":
        """Deep-enough copy: headers and body are independent."""
        return HttpRequest(self.method, self.uri, self.headers.copy(), bytes(self.body))

    def __repr__(self) -> str:
        rid = self.request_id
        tag = f" id={rid}" if rid else ""
        return f"<HttpRequest {self.method} {self.uri}{tag}>"


@dataclasses.dataclass
class HttpResponse:
    """An HTTP response."""

    status: int
    headers: Headers = dataclasses.field(default_factory=Headers)
    body: bytes = b""

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise ValueError(f"status must be a 3-digit HTTP code, got {self.status}")
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)
        if isinstance(self.body, str):
            self.body = self.body.encode("utf-8")

    @property
    def reason(self) -> str:
        """Reason phrase for the status code."""
        return reason_phrase(self.status)

    @property
    def ok(self) -> bool:
        """True for 2xx responses."""
        return is_success(self.status)

    @property
    def is_error(self) -> bool:
        """True for 4xx/5xx responses."""
        return is_error(self.status)

    @property
    def request_id(self) -> str | None:
        """Request ID echoed on the response, if any."""
        return self.headers.get(REQUEST_ID_HEADER)

    def text(self, encoding: str = "utf-8") -> str:
        """Body decoded as text."""
        return self.body.decode(encoding)

    def copy(self) -> "HttpResponse":
        """Deep-enough copy: headers and body are independent."""
        return HttpResponse(self.status, self.headers.copy(), bytes(self.body))

    @classmethod
    def error(
        cls, status: int, message: str = "", request_id: str | None = None
    ) -> "HttpResponse":
        """Convenience constructor for error responses (used by Abort)."""
        headers = Headers()
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        body = message or reason_phrase(status)
        return cls(status, headers, body.encode("utf-8"))

    def __repr__(self) -> str:
        return f"<HttpResponse {self.status} {self.reason}>"


Message = _t.Union[HttpRequest, HttpResponse]
__all__.append("Message")
