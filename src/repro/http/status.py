"""HTTP status codes and reason phrases.

Only the subset relevant to the paper appears by name (200, 404, 503,
...), but arbitrary three-digit codes are accepted, since a Gremlin
``Abort`` rule may return any application-level error code.
"""

from __future__ import annotations

__all__ = [
    "REASON_PHRASES",
    "reason_phrase",
    "is_informational",
    "is_success",
    "is_redirect",
    "is_client_error",
    "is_server_error",
    "is_error",
    "OK",
    "NO_CONTENT",
    "BAD_REQUEST",
    "UNAUTHORIZED",
    "FORBIDDEN",
    "NOT_FOUND",
    "REQUEST_TIMEOUT",
    "TOO_MANY_REQUESTS",
    "INTERNAL_SERVER_ERROR",
    "BAD_GATEWAY",
    "SERVICE_UNAVAILABLE",
    "GATEWAY_TIMEOUT",
]

OK = 200
NO_CONTENT = 204
BAD_REQUEST = 400
UNAUTHORIZED = 401
FORBIDDEN = 403
NOT_FOUND = 404
REQUEST_TIMEOUT = 408
TOO_MANY_REQUESTS = 429
INTERNAL_SERVER_ERROR = 500
BAD_GATEWAY = 502
SERVICE_UNAVAILABLE = 503
GATEWAY_TIMEOUT = 504

REASON_PHRASES: dict[int, str] = {
    100: "Continue",
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def reason_phrase(status: int) -> str:
    """Human-readable phrase for ``status`` (generic fallback)."""
    return REASON_PHRASES.get(status, "Unknown")


def is_informational(status: int) -> bool:
    """1xx."""
    return 100 <= status < 200


def is_success(status: int) -> bool:
    """2xx."""
    return 200 <= status < 300


def is_redirect(status: int) -> bool:
    """3xx."""
    return 300 <= status < 400


def is_client_error(status: int) -> bool:
    """4xx."""
    return 400 <= status < 500


def is_server_error(status: int) -> bool:
    """5xx."""
    return 500 <= status < 600


def is_error(status: int) -> bool:
    """4xx or 5xx — what retry policies and breakers count as failures."""
    return 400 <= status < 600
