"""Case-insensitive HTTP header map.

Request-ID propagation — the mechanism Gremlin uses to confine fault
injection to test traffic (paper Section 4.1, "Injecting faults on
specific request flows") — rides in a header, so the header map is a
first-class substrate component.
"""

from __future__ import annotations

import typing as _t

__all__ = ["Headers", "REQUEST_ID_HEADER", "SPAN_ID_HEADER"]

#: The header carrying the globally-unique request ID that every
#: microservice propagates downstream (cf. Zipkin's ``X-B3-TraceId``).
REQUEST_ID_HEADER = "X-Gremlin-Request-Id"

#: The header carrying the span ID of the *enclosing* call, so the next
#: sidecar hop can record it as the parent span (cf. ``X-B3-SpanId``).
#: Minted by agents, propagated by services alongside the request ID.
SPAN_ID_HEADER = "X-Gremlin-Span-Id"


class Headers:
    """An ordered, case-insensitive single-value header map.

    Keys preserve their first-seen casing for serialization but compare
    case-insensitively, as HTTP requires.  Values are strings.
    """

    def __init__(self, items: _t.Union[dict, _t.Iterable[tuple[str, str]], None] = None) -> None:
        self._entries: dict[str, tuple[str, str]] = {}
        if items:
            pairs = items.items() if isinstance(items, dict) else items
            for key, value in pairs:
                self[key] = value

    def __setitem__(self, key: str, value: str) -> None:
        self._entries[key.lower()] = (key, str(value))

    def __getitem__(self, key: str) -> str:
        return self._entries[key.lower()][1]

    def __delitem__(self, key: str) -> None:
        del self._entries[key.lower()]

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and key.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> _t.Iterator[str]:
        return (original for original, _value in self._entries.values())

    def get(self, key: str, default: str | None = None) -> str | None:
        """Value for ``key`` or ``default`` if absent."""
        entry = self._entries.get(key.lower())
        return entry[1] if entry is not None else default

    def setdefault(self, key: str, value: str) -> str:
        """Set ``key`` to ``value`` unless present; return final value."""
        if key in self:
            return self[key]
        self[key] = value
        return value

    def items(self) -> _t.Iterator[tuple[str, str]]:
        """Iterate ``(original_case_key, value)`` pairs in insert order."""
        return iter(list(self._entries.values()))

    def copy(self) -> "Headers":
        """An independent copy."""
        return Headers(list(self.items()))

    def to_dict(self) -> dict[str, str]:
        """Plain dict snapshot (original-case keys)."""
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Headers):
            return {k.lower(): v for k, (_, v) in self._entries.items()} == {
                k.lower(): v for k, (_, v) in other._entries.items()
            }
        return NotImplemented

    def __repr__(self) -> str:
        return f"Headers({self.to_dict()!r})"
