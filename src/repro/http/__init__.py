"""HTTP-like Layer-7 substrate: messages, wire codec, client, server.

All inter-service communication in the reproduced applications flows
through this package, which is what lets the Gremlin agents intercept,
match, log, and manipulate it (observation O1 of the paper: "Touch the
network, not the app").
"""

from repro.http.client import HttpClient, await_with_deadline
from repro.http.codec import (
    decode,
    decode_request,
    decode_response,
    encode,
    encode_request,
    encode_response,
)
from repro.http.headers import REQUEST_ID_HEADER, SPAN_ID_HEADER, Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import Handler, HttpServer
from repro.http.status import (
    BAD_GATEWAY,
    GATEWAY_TIMEOUT,
    INTERNAL_SERVER_ERROR,
    NOT_FOUND,
    OK,
    SERVICE_UNAVAILABLE,
    is_error,
    is_success,
    reason_phrase,
)

__all__ = [
    "BAD_GATEWAY",
    "GATEWAY_TIMEOUT",
    "Handler",
    "Headers",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "INTERNAL_SERVER_ERROR",
    "NOT_FOUND",
    "OK",
    "REQUEST_ID_HEADER",
    "SERVICE_UNAVAILABLE",
    "SPAN_ID_HEADER",
    "await_with_deadline",
    "decode",
    "decode_request",
    "decode_response",
    "encode",
    "encode_request",
    "encode_response",
    "is_error",
    "is_success",
    "reason_phrase",
]
