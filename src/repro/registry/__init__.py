"""Service registry: logical service names -> physical instances.

The Failure Orchestrator uses the registry to locate *every* physical
instance of the Gremlin agents fronting a given service (paper Section
4.2 and Figure 3: applying a rule between ServiceA and ServiceB must
configure the agents of all ServiceA instances).
"""

from repro.registry.registry import InstanceRecord, ServiceRegistry

__all__ = ["InstanceRecord", "ServiceRegistry"]
