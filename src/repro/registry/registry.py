"""The service registry implementation.

Mirrors the role of Consul/Eureka-style registries in the paper's
deployments (Section 6 mentions mappings "fetched dynamically from a
service registry"): a mapping from logical service name to the set of
live physical instances, each with its serving address and — when a
Gremlin sidecar fronts it — the agent's control endpoint.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import RegistryError, ServiceNotFoundError
from repro.network.address import Address

__all__ = ["InstanceRecord", "ServiceRegistry"]


@dataclasses.dataclass(frozen=True)
class InstanceRecord:
    """One physical instance of a logical service.

    ``agent`` is the in-process handle to the Gremlin agent colocated
    with this instance (the sidecar), or ``None`` for services deployed
    without one — in which case faults cannot be injected on its
    *outbound* calls, exactly like a real deployment missing a sidecar.

    ``canary`` marks an instance dedicated to handling test requests
    (paper Section 9: "copies of a microservice dedicated to handling
    test requests") — sidecars route test-tagged flows to canaries so
    destructive experiments never touch production state.
    """

    service: str
    instance_id: str
    address: Address
    agent: _t.Any = None  # GremlinAgent; Any avoids a circular import
    canary: bool = False

    def __str__(self) -> str:
        return f"{self.service}/{self.instance_id}@{self.address}"


class ServiceRegistry:
    """Name -> instances mapping with registration and lookup."""

    def __init__(self) -> None:
        self._instances: dict[str, dict[str, InstanceRecord]] = {}

    def register(self, record: InstanceRecord) -> None:
        """Add an instance; duplicate IDs within a service are rejected."""
        by_id = self._instances.setdefault(record.service, {})
        if record.instance_id in by_id:
            raise RegistryError(
                f"instance {record.instance_id!r} of {record.service!r} already registered"
            )
        by_id[record.instance_id] = record

    def deregister(self, service: str, instance_id: str) -> None:
        """Remove an instance (no-op if absent)."""
        by_id = self._instances.get(service)
        if by_id is not None:
            by_id.pop(instance_id, None)
            if not by_id:
                del self._instances[service]

    def instances(self, service: str) -> list[InstanceRecord]:
        """All instances of ``service``; raises if none registered."""
        by_id = self._instances.get(service)
        if not by_id:
            raise ServiceNotFoundError(f"no instances registered for service {service!r}")
        return list(by_id.values())

    def try_instances(self, service: str) -> list[InstanceRecord]:
        """Like :meth:`instances` but returns ``[]`` instead of raising."""
        return list(self._instances.get(service, {}).values())

    def addresses(self, service: str) -> list[Address]:
        """Serving addresses of the *production* instances of ``service``.

        Canary instances are excluded: ordinary traffic must never land
        on them.  If a service consists solely of canaries (a test-only
        deployment), those are returned rather than failing lookups.
        """
        records = self.instances(service)
        production = [record.address for record in records if not record.canary]
        return production or [record.address for record in records]

    def canary_addresses(self, service: str) -> list[Address]:
        """Serving addresses of the canary instances of ``service``
        (empty when none are deployed)."""
        return [
            record.address
            for record in self.try_instances(service)
            if record.canary
        ]

    def services(self) -> list[str]:
        """All registered logical service names (registration order)."""
        return list(self._instances)

    def has_service(self, service: str) -> bool:
        """True if at least one instance of ``service`` is registered."""
        return bool(self._instances.get(service))

    def __len__(self) -> int:
        return sum(len(by_id) for by_id in self._instances.values())

    def __repr__(self) -> str:
        summary = {name: len(by_id) for name, by_id in self._instances.items()}
        return f"<ServiceRegistry {summary}>"
