"""Command-line interface: ``python -m repro <command>``.

A small operator-facing front end over the library, mirroring how the
paper's operators interacted with Gremlin from scripts:

* ``python -m repro apps`` — list the prebuilt application topologies;
* ``python -m repro graph <app>`` — print an app's logical graph;
* ``python -m repro recipes <app>`` — auto-generate recipes (Section 9)
  for an app's graph and print them;
* ``python -m repro test <app> --scenario overload --target <svc>`` —
  deploy the app, stage a scenario, drive load, and report every
  pattern check Gremlin can evaluate on the faulted edges.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.apps import (
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_enterprise_app,
    build_messagebus_app,
    build_tree_app,
    build_twotier,
    build_wordpress_app,
)
from repro.core import (
    Crash,
    Degrade,
    Gremlin,
    Hang,
    HasBoundedRetries,
    HasTimeouts,
    Overload,
    generate_recipes,
)
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application

__all__ = ["main", "APPS"]

#: Name -> zero-argument builder for every prebuilt application.
APPS: dict[str, _t.Callable[[], Application]] = {
    "twotier": build_twotier,
    "wordpress": build_wordpress_app,
    "enterprise": build_enterprise_app,
    "tree3": lambda: build_tree_app(3),
    "messagebus": build_messagebus_app,
    "database": build_database_app,
    "coreservice": build_coreservice_app,
    "billing": build_billing_app,
}

_SCENARIOS = {
    "overload": lambda target: Overload(target),
    "crash": lambda target: Crash(target),
    "hang": lambda target: Hang(target),
    "degrade": lambda target: Degrade(target, interval="2s"),
}


def _build(name: str) -> Application:
    try:
        return APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; available: {', '.join(APPS)}") from None


def cmd_apps(_args: argparse.Namespace) -> int:
    print("prebuilt applications:")
    for name, builder in APPS.items():
        app = builder()
        print(f"  {name:<12} services: {', '.join(app.definitions)}")
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    graph = _build(args.app).logical_graph()
    print(f"logical application graph of {args.app!r}:")
    for caller, callee in sorted(graph.edges()):
        print(f"  {caller} -> {callee}")
    print(f"entry services: {', '.join(graph.entry_services())}")
    print(f"leaf services:  {', '.join(graph.leaf_services())}")
    return 0


def cmd_recipes(args: argparse.Namespace) -> int:
    graph = _build(args.app).logical_graph()
    recipes = generate_recipes(graph)
    print(f"{len(recipes)} auto-generated recipes for {args.app!r}:")
    for recipe in recipes:
        scenario_text = ", ".join(scenario.describe() for scenario in recipe.scenarios)
        print(f"  {recipe.name:<32} [{scenario_text}] {len(recipe.checks)} checks")
    return 0


def cmd_test(args: argparse.Namespace) -> int:
    app = _build(args.app)
    deployment = app.deploy(seed=args.seed)
    graph = deployment.graph
    if args.target not in graph.services():
        raise SystemExit(
            f"unknown target {args.target!r}; services: {', '.join(graph.services())}"
        )
    entry = args.entry or graph.entry_services()[0]
    source = deployment.add_traffic_source(entry)
    gremlin = Gremlin(deployment)

    scenario = _SCENARIOS[args.scenario](args.target)
    print(f"staging {scenario.describe()} on {args.app!r}; load via {entry!r}")
    gremlin.inject(scenario)
    ClosedLoopLoad(num_requests=args.requests, think_time=args.think).run(source)

    failed = 0
    for caller in graph.dependents(args.target):
        for check in (
            HasTimeouts(caller, "1s"),
            HasBoundedRetries(caller, args.target, max_tries=5, window="10s"),
        ):
            result = check.run(deployment.store)
            print(f"  {result}")
            if not result.passed and not result.inconclusive:
                failed += 1
    gremlin.clear()
    print("verdict:", "ISSUES FOUND" if failed else "no conclusive failures")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gremlin resilience testing (ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list prebuilt applications").set_defaults(func=cmd_apps)

    graph_parser = sub.add_parser("graph", help="print an app's logical graph")
    graph_parser.add_argument("app")
    graph_parser.set_defaults(func=cmd_graph)

    recipes_parser = sub.add_parser("recipes", help="auto-generate recipes for an app")
    recipes_parser.add_argument("app")
    recipes_parser.set_defaults(func=cmd_recipes)

    test_parser = sub.add_parser("test", help="stage a scenario and run pattern checks")
    test_parser.add_argument("app")
    test_parser.add_argument("--target", required=True, help="service to fault")
    test_parser.add_argument("--scenario", choices=sorted(_SCENARIOS), default="overload")
    test_parser.add_argument("--entry", default=None, help="service to inject load into")
    test_parser.add_argument("--requests", type=int, default=20)
    test_parser.add_argument("--think", type=float, default=0.05)
    test_parser.add_argument("--seed", type=int, default=0)
    test_parser.set_defaults(func=cmd_test)
    return parser


def main(argv: _t.Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
