"""Command-line interface: ``python -m repro <command>``.

A small operator-facing front end over the library, mirroring how the
paper's operators interacted with Gremlin from scripts:

* ``python -m repro apps`` — list the prebuilt application topologies;
* ``python -m repro graph <app>`` — print an app's logical graph;
* ``python -m repro recipes <app>`` — auto-generate recipes (Section 9)
  for an app's graph and print them;
* ``python -m repro test <app> --scenario overload --target <svc>`` —
  deploy the app, stage a scenario, drive load, and report every
  pattern check Gremlin can evaluate on the faulted edges;
* ``python -m repro trace <app> <request-id>`` — run a faulted load
  and render the reconstructed causal tree of one request, with the
  injected fault and the latency-critical path annotated;
* ``python -m repro metrics <app>`` — run a (optionally faulted) load
  and print the deployment's metrics snapshot as Prometheus text or
  JSON;
* ``python -m repro campaign run <app>`` — plan and execute a whole
  auto-generated campaign across parallel workers, print the
  resilience scorecard, optionally dump the result as JSON-lines;
* ``python -m repro campaign smoke <app>`` — capped, fast campaign
  proving the fleet wiring end to end;
* ``python -m repro campaign diff <a> <b>`` — regression detection
  between two dumped campaign results;
* ``python -m repro report <dump>`` — render the operator resilience
  report (deterministic JSON or standalone HTML) from a dumped
  campaign; ``campaign run --report-out`` and ``fuzz explore
  --report-out`` produce the same artifact inline.

``repro recipes``/``repro test``/``campaign`` accept ``--json`` for
machine-readable output, so campaign tooling and scripts can consume
them without parsing tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import typing as _t

from repro.apps import (
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_deepfanout_app,
    build_enterprise_app,
    build_hotelreservation_app,
    build_messagebus_app,
    build_retrystorm_app,
    build_socialnetwork_app,
    build_stuckbreaker_app,
    build_tree_app,
    build_twotier,
    build_wordpress_app,
)
from repro.campaign import (
    CampaignRunner,
    diff_campaigns,
    dump_jsonl,
    load_jsonl,
    plan_campaign,
)
from repro.core import (
    Crash,
    Degrade,
    EdgeAnnotation,
    Gremlin,
    Hang,
    HasBoundedRetries,
    HasTimeouts,
    Overload,
    generate_recipes,
)
from repro.errors import AnalysisError, CampaignError, ExploreError, TraceError
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application
from repro.observability import attribute_trace, reconstruct, to_json, to_prometheus

__all__ = ["main", "APPS", "build_tree3_app"]


def build_tree3_app() -> Application:
    """Depth-3 service tree (module-level so the ``processes`` fleet
    backend can pickle the factory to its spawn-started workers)."""
    return build_tree_app(3)


#: Name -> zero-argument builder for every prebuilt application.  All
#: builders are importable module-level callables, which is what lets
#: ``--backend processes`` ship any of them to worker interpreters.
APPS: dict[str, _t.Callable[[], Application]] = {
    "twotier": build_twotier,
    "wordpress": build_wordpress_app,
    "enterprise": build_enterprise_app,
    "tree3": build_tree3_app,
    "messagebus": build_messagebus_app,
    "database": build_database_app,
    "coreservice": build_coreservice_app,
    "billing": build_billing_app,
    # Seeded-resilience-bug fixtures (ground truth for `fuzz explore`).
    "deepfanout": build_deepfanout_app,
    "retrystorm": build_retrystorm_app,
    "stuckbreaker": build_stuckbreaker_app,
    # Production-scale benchmark apps (DeathStarBench-class; naive
    # builds — pass resilient=True in code for the hardened variants).
    "socialnetwork": build_socialnetwork_app,
    "hotelreservation": build_hotelreservation_app,
}

_SCENARIOS = {
    "overload": lambda target: Overload(target),
    "crash": lambda target: Crash(target),
    "hang": lambda target: Hang(target),
    "degrade": lambda target: Degrade(target, interval="2s"),
}


def _build(name: str) -> Application:
    try:
        return APPS[name]()
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; available: {', '.join(APPS)}") from None


def cmd_apps(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        catalog = []
        for name, builder in APPS.items():
            app = builder()
            graph = app.logical_graph()
            catalog.append(
                {
                    "name": name,
                    "services": list(app.definitions),
                    "num_services": len(app.definitions),
                    "num_edges": len(graph.edges()),
                    "entry_services": graph.entry_services(),
                }
            )
        print(json.dumps({"apps": catalog}, indent=2))
        return 0
    print("prebuilt applications:")
    for name, builder in APPS.items():
        app = builder()
        print(f"  {name:<16} {len(app.definitions):>2} services: {', '.join(app.definitions)}")
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    graph = _build(args.app).logical_graph()
    print(f"logical application graph of {args.app!r}:")
    for caller, callee in sorted(graph.edges()):
        print(f"  {caller} -> {callee}")
    print(f"entry services: {', '.join(graph.entry_services())}")
    print(f"leaf services:  {', '.join(graph.leaf_services())}")
    return 0


def cmd_recipes(args: argparse.Namespace) -> int:
    graph = _build(args.app).logical_graph()
    recipes = generate_recipes(graph)
    if args.json:
        print(
            json.dumps(
                {
                    "app": args.app,
                    "recipes": [
                        {
                            "name": recipe.name,
                            "scenarios": [s.describe() for s in recipe.scenarios],
                            "checks": [check.name for check in recipe.checks],
                        }
                        for recipe in recipes
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(f"{len(recipes)} auto-generated recipes for {args.app!r}:")
    for recipe in recipes:
        scenario_text = ", ".join(scenario.describe() for scenario in recipe.scenarios)
        print(f"  {recipe.name:<32} [{scenario_text}] {len(recipe.checks)} checks")
    return 0


def cmd_test(args: argparse.Namespace) -> int:
    app = _build(args.app)
    deployment = app.deploy(seed=args.seed)
    graph = deployment.graph
    if args.target not in graph.services():
        raise SystemExit(
            f"unknown target {args.target!r}; services: {', '.join(graph.services())}"
        )
    entry = args.entry or graph.entry_services()[0]
    source = deployment.add_traffic_source(entry)
    gremlin = Gremlin(deployment)

    scenario = _SCENARIOS[args.scenario](args.target)
    if not args.json:
        print(f"staging {scenario.describe()} on {args.app!r}; load via {entry!r}")
    gremlin.inject(scenario)
    ClosedLoopLoad(num_requests=args.requests, think_time=args.think).run(source)

    failed = 0
    results = []
    for caller in graph.dependents(args.target):
        for check in (
            HasTimeouts(caller, "1s"),
            HasBoundedRetries(caller, args.target, max_tries=5, window="10s"),
        ):
            result = check.run(deployment.store)
            results.append(result)
            if not args.json:
                print(f"  {result}")
            if not result.passed and not result.inconclusive:
                failed += 1
    gremlin.clear()
    if args.json:
        print(
            json.dumps(
                {
                    "app": args.app,
                    "target": args.target,
                    "scenario": scenario.describe(),
                    "entry": entry,
                    "checks": [
                        {
                            "name": result.name,
                            "passed": result.passed,
                            "inconclusive": result.inconclusive,
                            "detail": result.detail,
                        }
                        for result in results
                    ],
                    "issues_found": bool(failed),
                },
                indent=2,
            )
        )
    else:
        print("verdict:", "ISSUES FOUND" if failed else "no conclusive failures")
    return 1 if failed else 0


# -- observability subcommands -------------------------------------------------


def _faulted_run(args: argparse.Namespace):
    """Deploy an app, optionally stage a scenario, drive load; returns
    (deployment, gremlin, installed rules) with the pipeline flushed."""
    app = _build(args.app)
    deployment = app.deploy(seed=args.seed)
    graph = deployment.graph
    entry = args.entry or graph.entry_services()[0]
    if entry not in graph.services():
        raise SystemExit(
            f"unknown entry {entry!r}; services: {', '.join(graph.services())}"
        )
    source = deployment.add_traffic_source(entry)
    gremlin = Gremlin(deployment)
    rules = []
    if args.target is not None:
        if args.target not in graph.services():
            raise SystemExit(
                f"unknown target {args.target!r}; services: {', '.join(graph.services())}"
            )
        scenario = _SCENARIOS[args.scenario](args.target)
        rules = gremlin.inject(scenario).rules
    ClosedLoopLoad(num_requests=args.requests, think_time=args.think).run(source)
    deployment.sim.run()
    deployment.pipeline.flush()
    return deployment, gremlin, rules


def cmd_trace(args: argparse.Namespace) -> int:
    deployment, _gremlin, rules = _faulted_run(args)
    try:
        trace = reconstruct(deployment.store, args.request_id)
    except TraceError as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        doc = trace.to_dict()
        doc["attributions"] = [a.to_dict() for a in attribute_trace(trace, rules)]
        print(json.dumps(doc, indent=2))
        return 0
    print(trace.render())
    attributions = attribute_trace(trace, rules)
    if attributions:
        print("fault attribution:")
        for attribution in attributions:
            print(f"  {attribution.describe()}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    deployment, _gremlin, _rules = _faulted_run(args)
    snapshot = deployment.metrics_snapshot()
    if args.format == "json":
        print(to_json(snapshot), end="")
    else:
        print(to_prometheus(snapshot), end="")
    return 0


# -- campaign subcommands ------------------------------------------------------


def _plan_from_args(args: argparse.Namespace):
    factory = APPS[args.app] if args.app in APPS else None
    if factory is None:
        raise SystemExit(f"unknown app {args.app!r}; available: {', '.join(APPS)}")
    annotations = None
    if getattr(args, "criticality_high", False):
        services = factory().logical_graph().services()
        annotations = {s: EdgeAnnotation(criticality="high") for s in services}
    extra_recipes: _t.Sequence = ()
    if getattr(args, "recipes", None):
        from repro.explore import read_recipe_suite

        try:
            suite_app, extra_recipes = read_recipe_suite(args.recipes)
        except ExploreError as exc:
            raise SystemExit(str(exc)) from None
        if suite_app != args.app:
            raise SystemExit(
                f"recipe suite {args.recipes!r} targets app {suite_app!r},"
                f" not {args.app!r}"
            )
    try:
        plan = plan_campaign(
            factory,
            seed=args.seed,
            annotations=annotations,
            extra_recipes=extra_recipes,
            entry=args.entry,
            requests=args.requests,
            think_time=args.think,
            max_recipes=args.max_recipes,
        )
    except CampaignError as exc:
        raise SystemExit(str(exc)) from None
    return factory, plan


def _workers_arg(value: str) -> _t.Union[int, str]:
    """argparse type for ``--workers``: a positive int or ``auto``
    (one worker per CPU core, resolved by the fleet)."""
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {workers}")
    return workers


def cmd_campaign_run(args: argparse.Namespace) -> int:
    factory, plan = _plan_from_args(args)
    runner = CampaignRunner(
        factory,
        workers=args.workers,
        backend=args.backend,
        timeout=args.timeout,
        pacing=args.pacing,
        fail_fast=args.fail_fast,
        rerun_failures=args.rerun,
        batch_size=args.batch_size,
        result_transport=args.result_transport,
    )
    if not args.json:
        print(plan.summary())
    if args.shards > 1:
        result = runner.run_sharded(plan, shards=args.shards)
    else:
        result = runner.run(plan)
    if args.out:
        dump_jsonl(result, args.out)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(to_json(result.merged_metrics()))
    if args.report_out:
        result.resilience_report().save(args.report_out)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.scorecard().text())
        for outcome in result.flaky:
            print(f"  FLAKY  {outcome.name}: attempts {outcome.attempts}")
        for outcome in result.broken:
            print(f"  BROKEN {outcome.name}: attempts {outcome.attempts}")
        print(result.summary())
        if args.out:
            print(f"result written to {args.out}")
        if args.metrics_out:
            print(f"merged metrics written to {args.metrics_out}")
        if args.report_out:
            print(f"resilience report written to {args.report_out}")
    return 0 if result.passed else 1


def cmd_campaign_smoke(args: argparse.Namespace) -> int:
    """Capped fast campaign proving the fleet wiring end to end."""
    factory, plan = _plan_from_args(args)
    runner = CampaignRunner(
        factory,
        workers=args.workers,
        backend=args.backend,
        timeout=args.timeout,
        rerun_failures=1,
        batch_size=args.batch_size,
        result_transport=args.result_transport,
    )
    result = runner.run(plan)
    broken_wiring = [
        outcome for outcome in result.outcomes if outcome.status in ("error", "timeout")
    ]
    if args.report_out:
        result.resilience_report().save(args.report_out)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        for outcome in result.outcomes:
            print(f"  [{outcome.status.upper():^12}] {outcome.name}")
        print(result.summary())
        if args.report_out:
            print(f"resilience report written to {args.report_out}")
    return 1 if broken_wiring else 0


def cmd_campaign_diff(args: argparse.Namespace) -> int:
    try:
        baseline = load_jsonl(args.baseline)
        candidate = load_jsonl(args.candidate)
    except (OSError, CampaignError) as exc:
        raise SystemExit(str(exc)) from None
    diff = diff_campaigns(baseline, candidate)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.text())
    return 1 if diff.has_regressions else 0


# -- fuzz subcommands ----------------------------------------------------------


def cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz import run_fuzz

    report = run_fuzz(
        args.seed,
        args.cases,
        workers=args.workers,
        backend=args.backend,
        app_registry=APPS,
        artifacts_dir=args.artifacts,
        shrink_failures=not args.no_shrink,
        batch_size=args.batch_size,
        result_transport=args.result_transport,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.passed else 1


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.errors import GremlinError
    from repro.fuzz import replay_artifact

    try:
        result = replay_artifact(args.artifact, app_registry=APPS)
    except (OSError, GremlinError, KeyError, ValueError) as exc:
        raise SystemExit(f"cannot replay {args.artifact}: {exc}") from None
    doc = {
        "case_id": result.report.case.case_id,
        "reproduced": result.reproduced,
        "expected_mismatch_kinds": result.expected_kinds,
        "observed_mismatch_kinds": result.report.mismatch_kinds(),
        "expected_digest": result.expected_digest,
        "observed_digest": result.report.digest,
    }
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        verdict = "reproduced" if result.reproduced else "DID NOT reproduce"
        print(f"{doc['case_id']}: {verdict}")
        print(f"  expected: {', '.join(result.expected_kinds) or '(none)'}")
        print(f"  observed: {', '.join(doc['observed_mismatch_kinds']) or '(none)'}")
        print(f"  digest match: {result.expected_digest == result.report.digest}")
    return 0 if result.reproduced else 1


def cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.errors import GremlinError
    from repro.fuzz import load_artifact, run_case, shrink, write_artifact
    from repro.fuzz.spec import FuzzCase

    try:
        data = load_artifact(args.artifact)
        case = FuzzCase.from_dict(data["case"])
    except (OSError, GremlinError, KeyError, ValueError) as exc:
        raise SystemExit(f"cannot load {args.artifact}: {exc}") from None
    report = run_case(case, app_registry=APPS)
    if not report.failed:
        print(f"{case.case_id}: passes the battery; nothing to shrink")
        return 1
    result = shrink(case, app_registry=APPS)
    out = args.out or args.artifact
    write_artifact(out, result.report, shrink_steps=result.steps)
    print(f"{case.case_id}: shrunk in {result.evaluations} evaluations")
    for step in result.steps:
        print(f"  {step}")
    print(f"minimized artifact written to {out}")
    return 0


def _per_app_path(path: str, app: str, multi: bool) -> str:
    """``report.html`` -> ``report.deepfanout.html`` when exploring
    several apps into one ``--*-out`` flag (one artifact per app)."""
    if not multi:
        return path
    stem, dot, ext = path.rpartition(".")
    return f"{stem}.{app}.{ext}" if dot else f"{path}.{app}"


def cmd_fuzz_explore(args: argparse.Namespace) -> int:
    from repro.apps.outages import SEEDED_BUG_SUITE
    from repro.explore import dump_recipe_suite, run_explore
    from repro.observability.cascade import build_explore_report

    if args.app != "all" and args.app not in SEEDED_BUG_SUITE:
        raise SystemExit(
            f"unknown seeded-bug app {args.app!r}; available:"
            f" {', '.join(sorted(SEEDED_BUG_SUITE))} (or 'all')"
        )
    apps = sorted(SEEDED_BUG_SUITE) if args.app == "all" else [args.app]
    multi = len(apps) > 1
    reports = []
    written: list[str] = []
    for app in apps:
        result = run_explore(
            app,
            budget=args.budget,
            seed=args.seed,
            strategy=args.strategy,
            workers=args.workers,
            backend=args.backend,
            batch_size=args.batch_size,
            result_transport=args.result_transport,
        )
        reports.append(result.report)
        if args.report_out:
            path = _per_app_path(args.report_out, app, multi)
            build_explore_report(result.report, result.space.graph).save(path)
            written.append(path)
        if args.recipes_out:
            path = _per_app_path(args.recipes_out, app, multi)
            dump_recipe_suite(result, path)
            written.append(path)
    doc = {
        "seed": args.seed,
        "budget": args.budget,
        "strategy": args.strategy,
        "all_bugs_found": all(report.all_bugs_found for report in reports),
        "apps": [report.to_dict() for report in reports],
    }
    if args.coverage_out:
        with open(args.coverage_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        for report in reports:
            print(report.render())
        if args.coverage_out:
            print(f"coverage report written to {args.coverage_out}")
        for path in written:
            print(f"written: {path}")
    return 0 if doc["all_bugs_found"] else 1


# -- report subcommand ---------------------------------------------------------


def cmd_report(args: argparse.Namespace) -> int:
    """Render the resilience report from a dumped campaign."""
    try:
        result = load_jsonl(args.dump)
    except (OSError, CampaignError) as exc:
        raise SystemExit(str(exc)) from None
    report = result.resilience_report()
    if args.out:
        report.save(args.out)
        print(f"resilience report written to {args.out}")
    else:
        print(report.to_json(), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gremlin resilience testing (ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    apps_parser = sub.add_parser("apps", help="list prebuilt applications")
    apps_parser.add_argument(
        "--json", action="store_true", help="machine-readable catalog"
    )
    apps_parser.set_defaults(func=cmd_apps)

    graph_parser = sub.add_parser("graph", help="print an app's logical graph")
    graph_parser.add_argument("app")
    graph_parser.set_defaults(func=cmd_graph)

    recipes_parser = sub.add_parser("recipes", help="auto-generate recipes for an app")
    recipes_parser.add_argument("app")
    recipes_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    recipes_parser.set_defaults(func=cmd_recipes)

    test_parser = sub.add_parser("test", help="stage a scenario and run pattern checks")
    test_parser.add_argument("app")
    test_parser.add_argument("--target", required=True, help="service to fault")
    test_parser.add_argument("--scenario", choices=sorted(_SCENARIOS), default="overload")
    test_parser.add_argument("--entry", default=None, help="service to inject load into")
    test_parser.add_argument("--requests", type=int, default=20)
    test_parser.add_argument("--think", type=float, default=0.05)
    test_parser.add_argument("--seed", type=int, default=0)
    test_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    test_parser.set_defaults(func=cmd_test)

    def add_run_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--target", default=None, help="service to fault (optional)")
        p.add_argument("--scenario", choices=sorted(_SCENARIOS), default="crash")
        p.add_argument("--entry", default=None, help="service to inject load into")
        p.add_argument("--requests", type=int, default=20)
        p.add_argument("--think", type=float, default=0.05)
        p.add_argument("--seed", type=int, default=0)

    trace_parser = sub.add_parser(
        "trace", help="run a faulted load and render one request's causal tree"
    )
    trace_parser.add_argument("app")
    trace_parser.add_argument(
        "request_id",
        help="request to reconstruct (the closed-loop load mints test-1..test-N)",
    )
    add_run_args(trace_parser)
    trace_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    trace_parser.set_defaults(func=cmd_trace)

    metrics_parser = sub.add_parser(
        "metrics", help="run a load and print the deployment metrics snapshot"
    )
    metrics_parser.add_argument("app")
    add_run_args(metrics_parser)
    metrics_parser.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="Prometheus text exposition (default) or JSON",
    )
    metrics_parser.set_defaults(func=cmd_metrics)

    campaign_parser = sub.add_parser(
        "campaign", help="plan and run whole auto-generated test campaigns"
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command", required=True)

    def add_plan_args(p: argparse.ArgumentParser, max_recipes: _t.Optional[int]) -> None:
        p.add_argument("app")
        p.add_argument("--seed", type=int, default=0, help="campaign master seed")
        p.add_argument("--entry", default=None, help="service to inject load into")
        p.add_argument("--requests", type=int, default=20, help="test requests per recipe")
        p.add_argument("--think", type=float, default=0.05)
        p.add_argument(
            "--max-recipes", type=int, default=max_recipes, help="cap the plan size"
        )
        p.add_argument(
            "--criticality-high",
            action="store_true",
            help="treat every service as high criticality (adds crash/breaker recipes)",
        )
        p.add_argument("--json", action="store_true", help="machine-readable output")

    def add_fleet_args(p: argparse.ArgumentParser, default_workers) -> None:
        p.add_argument(
            "--workers",
            type=_workers_arg,
            default=default_workers,
            help="parallel fleet size, or 'auto' for one worker per CPU core",
        )
        p.add_argument(
            "--backend",
            choices=("threads", "processes"),
            default="threads",
            help="worker backend: threads (no serialization, overlaps paced"
            " recipes) or processes (spawn-isolated interpreters;"
            " parallelizes CPU-bound suites across cores)",
        )
        p.add_argument(
            "--batch-size",
            type=int,
            default=1,
            help="processes backend: recipes shipped per worker dispatch"
            " (amortizes pickle/pipe round-trips for cheap recipes)",
        )
        p.add_argument(
            "--result-transport",
            choices=("pickle", "shm"),
            default=None,
            help="processes backend: result lane — pickle (reference) or"
            " shm (shared-memory slabs + compact codec; identical"
            " outcomes, lower result-path overhead); default consults"
            " REPRO_RESULT_TRANSPORT",
        )

    run_parser = campaign_sub.add_parser(
        "run", help="execute a full campaign and print the scorecard"
    )
    add_plan_args(run_parser, max_recipes=None)
    add_fleet_args(run_parser, default_workers="auto")
    run_parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-recipe wall-clock budget (s)"
    )
    run_parser.add_argument(
        "--pacing",
        type=float,
        default=0.0,
        help="minimum wall-clock seconds each recipe occupies its worker",
    )
    run_parser.add_argument(
        "--rerun",
        type=int,
        default=2,
        help="reseeded reruns per failed recipe (flake detection; 0 disables)",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the plan into N independent round-robin shards run"
        " concurrently; outcomes merge back into one scorecard",
    )
    run_parser.add_argument("--fail-fast", action="store_true")
    run_parser.add_argument("--out", default=None, help="dump result JSON-lines here")
    run_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the merged campaign metrics snapshot (JSON) here",
    )
    run_parser.add_argument(
        "--report-out",
        default=None,
        help="write the resilience report here (.json = deterministic"
        " JSON, anything else = standalone HTML)",
    )
    run_parser.add_argument(
        "--recipes",
        default=None,
        help="recipe suite JSON (from `fuzz explore --recipes-out`)"
        " added to the plan as extra recipes",
    )
    run_parser.set_defaults(func=cmd_campaign_run)

    smoke_parser = campaign_sub.add_parser(
        "smoke", help="capped fast campaign proving the fleet wiring"
    )
    add_plan_args(smoke_parser, max_recipes=6)
    add_fleet_args(smoke_parser, default_workers=2)
    smoke_parser.add_argument("--timeout", type=float, default=30.0)
    smoke_parser.add_argument(
        "--report-out",
        default=None,
        help="write the resilience report here (.json = JSON, else HTML)",
    )
    smoke_parser.set_defaults(func=cmd_campaign_smoke, requests=5)

    diff_parser = campaign_sub.add_parser(
        "diff", help="compare two dumped campaign results"
    )
    diff_parser.add_argument("baseline", help="JSON-lines dump of the baseline run")
    diff_parser.add_argument("candidate", help="JSON-lines dump of the candidate run")
    diff_parser.add_argument("--json", action="store_true", help="machine-readable output")
    diff_parser.set_defaults(func=cmd_campaign_diff)

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential fuzzing against the reference oracle"
    )
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="generate and differentially execute a case corpus"
    )
    fuzz_run.add_argument("--seed", type=int, default=0, help="corpus master seed")
    fuzz_run.add_argument("--cases", type=int, default=100, help="corpus size")
    fuzz_run.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="parallel fleet size, or 'auto' for one worker per CPU core",
    )
    fuzz_run.add_argument(
        "--backend",
        choices=("threads", "processes"),
        default="threads",
        help="worker backend: threads or spawn-isolated processes",
    )
    fuzz_run.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="processes backend: cases shipped per worker dispatch",
    )
    fuzz_run.add_argument(
        "--result-transport",
        choices=("pickle", "shm"),
        default=None,
        help="processes backend: result lane (pickle reference or shm slabs)",
    )
    fuzz_run.add_argument(
        "--artifacts",
        default=None,
        help="directory for minimized repro artifacts of failing cases",
    )
    fuzz_run.add_argument(
        "--no-shrink",
        action="store_true",
        help="keep failing cases unminimized (faster triage runs)",
    )
    fuzz_run.add_argument("--json", action="store_true", help="machine-readable output")
    fuzz_run.set_defaults(func=cmd_fuzz_run)

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-execute a repro artifact and confirm it reproduces"
    )
    fuzz_replay.add_argument("artifact", help="path to a fuzz repro artifact (JSON)")
    fuzz_replay.add_argument("--json", action="store_true", help="machine-readable output")
    fuzz_replay.set_defaults(func=cmd_fuzz_replay)

    fuzz_shrink = fuzz_sub.add_parser(
        "shrink", help="minimize a repro artifact's case in place"
    )
    fuzz_shrink.add_argument("artifact", help="path to a fuzz repro artifact (JSON)")
    fuzz_shrink.add_argument(
        "--out", default=None, help="write the minimized artifact here instead"
    )
    fuzz_shrink.set_defaults(func=cmd_fuzz_shrink)

    fuzz_explore = fuzz_sub.add_parser(
        "explore",
        help="systematic fault-space exploration of a seeded-bug app",
    )
    fuzz_explore.add_argument(
        "app",
        help='seeded-bug app name (repro apps | "all" for the whole suite)',
    )
    fuzz_explore.add_argument(
        "--budget", type=int, default=150, help="fault-execution budget per app"
    )
    fuzz_explore.add_argument("--seed", type=int, default=0, help="deployment seed")
    fuzz_explore.add_argument(
        "--strategy",
        choices=("prioritized", "random", "whatif"),
        default="prioritized",
        help="candidate ordering: prioritized (learning frontier),"
        " random (unprioritized baseline), or whatif (static ranking"
        " by graph what-if simulation)",
    )
    fuzz_explore.add_argument(
        "--coverage-out", default=None, help="write the coverage report JSON here"
    )
    fuzz_explore.add_argument(
        "--report-out",
        default=None,
        help="write the resilience report here (.json = JSON, else HTML;"
        ' with app "all", one file per app)',
    )
    fuzz_explore.add_argument(
        "--recipes-out",
        default=None,
        help="export bug-finding coordinates as a campaign-loadable"
        ' recipe suite JSON (with app "all", one file per app)',
    )
    fuzz_explore.add_argument(
        "--workers", default="1", help='fleet size (int or "auto")'
    )
    fuzz_explore.add_argument(
        "--backend",
        choices=("threads", "processes"),
        default="threads",
        help="fleet backend executing fault waves",
    )
    fuzz_explore.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="tasks per process-backend dispatch",
    )
    fuzz_explore.add_argument(
        "--result-transport",
        choices=("pickle", "shm"),
        default=None,
        help="processes backend: result lane (pickle reference or shm slabs)",
    )
    fuzz_explore.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    fuzz_explore.set_defaults(func=cmd_fuzz_explore)

    report_parser = sub.add_parser(
        "report",
        help="render the resilience report from a dumped campaign",
    )
    report_parser.add_argument(
        "dump", help="JSON-lines campaign dump (from `campaign run --out`)"
    )
    report_parser.add_argument(
        "--out",
        default=None,
        help="write here (.json = deterministic JSON, anything else ="
        " standalone HTML); omitted = print JSON to stdout",
    )
    report_parser.set_defaults(func=cmd_report)
    return parser


def main(argv: _t.Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Analysis-layer failures (malformed dumps, impossible graph or
    report inputs) exit with a one-line message instead of a
    traceback — they describe operator input, not repro bugs.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except AnalysisError as exc:
        raise SystemExit(f"analysis error: {exc}") from None


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
