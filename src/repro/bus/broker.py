"""A message broker modelling the publish-subscribe pattern.

Paper observation O2 lists publish-subscribe beside request-response as
the standard interaction patterns of microservice applications, and two
of the Table 1 outages (Parse.ly's "Kafkapocalypse", Stackdriver)
involve a message bus cascading.  This module provides the broker as an
ordinary microservice, which is the key property for Gremlin: both
hops of the pattern — publisher→broker and broker→subscriber — are
plain HTTP calls through sidecar agents, so faults can be staged and
recovery observed on either edge with the same primitives as
request-response.

Semantics (modelled on a Kafka/RabbitMQ hybrid, simplified):

* ``POST /publish/<topic>`` enqueues the message body for every
  subscriber of the topic and answers ``202 Accepted``.
* Each (topic, subscriber) pair has a bounded queue; a full queue makes
  the publish answer ``503`` — the backpressure that blocked Parse.ly's
  publishers when the downstream datastore died.
* A delivery worker per (topic, subscriber) pushes messages to the
  subscriber's ``/deliver/<topic>`` endpoint through the broker's
  sidecar.  Delivery is at-least-once: a failed push is retried after
  ``redelivery_delay`` without losing the message.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.errors import HttpError, NetworkError
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceContext, ServiceDefinition

__all__ = ["BrokerConfig", "broker_definition", "publish", "DELIVER_PREFIX", "PUBLISH_PREFIX"]

PUBLISH_PREFIX = "/publish/"
DELIVER_PREFIX = "/deliver/"


class BrokerConfig:
    """Tunable broker behaviour.

    ``queue_limit`` bounds each (topic, subscriber) queue; ``None``
    means unbounded (the configuration that lets memory blow up instead
    of exerting backpressure).  ``redelivery_delay`` is the pause
    before retrying a failed push.  ``drop_on_overflow`` switches the
    full-queue behaviour from 503-backpressure to silent drop (lossy
    but publisher-friendly), the trade-off real brokers expose.

    ``max_redeliveries`` bounds retries per message, after which it is
    moved to the dead-letter list (so a permanently-dead subscriber
    cannot spin the delivery worker forever); ``None`` retries without
    bound — beware that an eternally-failing subscriber then keeps the
    simulation's event queue alive, so drive such runs with
    ``sim.run(until=...)``.
    """

    def __init__(
        self,
        queue_limit: _t.Optional[int] = 100,
        redelivery_delay: float = 0.5,
        drop_on_overflow: bool = False,
        max_redeliveries: _t.Optional[int] = 20,
    ) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1 or None, got {queue_limit}")
        if redelivery_delay < 0:
            raise ValueError(f"redelivery_delay must be >= 0, got {redelivery_delay}")
        if max_redeliveries is not None and max_redeliveries < 1:
            raise ValueError(
                f"max_redeliveries must be >= 1 or None, got {max_redeliveries}"
            )
        self.queue_limit = queue_limit
        self.redelivery_delay = redelivery_delay
        self.drop_on_overflow = drop_on_overflow
        self.max_redeliveries = max_redeliveries


def broker_definition(
    name: str,
    topics: dict[str, list[str]],
    subscriber_policy: _t.Optional[PolicySpec] = None,
    config: _t.Optional[BrokerConfig] = None,
    instances: int = 1,
    service_time: float = 0.0005,
    worker_pool: _t.Optional[int] = None,
) -> ServiceDefinition:
    """Build the broker's :class:`ServiceDefinition`.

    ``topics`` maps topic name -> subscriber service names; every
    subscriber becomes a declared dependency of the broker (and hence
    an edge in the application graph that Gremlin can fault).
    ``subscriber_policy`` is the resilience policy for the broker's
    push calls — the knob whose absence made the Table 1 cascades
    possible.
    """
    if not topics:
        raise ValueError("broker needs at least one topic")
    config = config or BrokerConfig()
    policy = subscriber_policy or PolicySpec(timeout=1.0)
    subscribers = sorted({sub for subs in topics.values() for sub in subs})
    if not subscribers:
        raise ValueError("broker topics have no subscribers")
    return ServiceDefinition(
        name,
        handler=_broker_handler(topics, config),
        dependencies={subscriber: policy for subscriber in subscribers},
        instances=instances,
        service_time=service_time,
        worker_pool=worker_pool,
    )


def publish(
    ctx: ServiceContext,
    broker: str,
    topic: str,
    payload: bytes,
    parent: _t.Optional[HttpRequest] = None,
) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
    """Publish ``payload`` to ``topic`` via ``broker`` (subroutine).

    Convenience for publisher handlers: builds the ``POST
    /publish/<topic>`` request and sends it through the caller's
    sidecar like any other dependency call.
    """
    request = HttpRequest("POST", f"{PUBLISH_PREFIX}{topic}", body=payload)
    response = yield from ctx.call(broker, request, parent=parent)
    return response


def _broker_handler(topics: dict[str, list[str]], config: BrokerConfig):
    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        if not request.uri.startswith(PUBLISH_PREFIX):
            return HttpResponse(404, body=b"unknown broker endpoint")
        topic = request.uri[len(PUBLISH_PREFIX) :]
        subscribers = topics.get(topic)
        if subscribers is None:
            return HttpResponse(404, body=f"unknown topic {topic!r}".encode())

        state = _state(ctx)
        full_for: list[str] = []
        for subscriber in subscribers:
            queue = state["queues"][(topic, subscriber)]
            if config.queue_limit is not None and len(queue) >= config.queue_limit:
                if config.drop_on_overflow:
                    state["dropped"] += 1
                    continue
                full_for.append(subscriber)
                continue
            queue.append((request.request_id, bytes(request.body)))
            _wake_worker(ctx, state, topic, subscriber, config)
        if full_for:
            return HttpResponse(
                503, body=f"queue full for subscribers: {','.join(full_for)}".encode()
            )
        return HttpResponse(202, body=b"queued")

    def _state(ctx: ServiceContext) -> dict:
        state = ctx.state.get("broker")
        if state is None:
            state = {
                "queues": {
                    (topic, subscriber): deque()
                    for topic, subs in topics.items()
                    for subscriber in subs
                },
                "workers": {},
                "delivered": 0,
                "dropped": 0,
                "redeliveries": 0,
                "dead_letter": [],
            }
            ctx.state["broker"] = state
        return state

    def _wake_worker(ctx, state, topic: str, subscriber: str, config: BrokerConfig) -> None:
        key = (topic, subscriber)
        worker = state["workers"].get(key)
        if worker is not None and worker.is_alive:
            return
        state["workers"][key] = ctx.sim.process(
            _delivery_loop(ctx, state, topic, subscriber, config),
            name=f"{ctx.instance_id}/deliver/{topic}->{subscriber}",
        )

    def _delivery_loop(ctx, state, topic: str, subscriber: str, config: BrokerConfig):
        queue = state["queues"][(topic, subscriber)]
        attempts = 0
        while queue:
            request_id, payload = queue[0]
            push = HttpRequest("POST", f"{DELIVER_PREFIX}{topic}", body=payload)
            if request_id is not None:
                push.request_id = request_id
            try:
                response = yield from ctx.call(subscriber, push)
                delivered = response.status < 500
            except (NetworkError, HttpError):
                delivered = False
            if delivered:
                queue.popleft()
                state["delivered"] += 1
                attempts = 0
                continue
            # At-least-once: keep the message, back off, retry — up to
            # the redelivery budget, then dead-letter it so a dead
            # subscriber cannot spin this worker forever.
            state["redeliveries"] += 1
            attempts += 1
            if config.max_redeliveries is not None and attempts > config.max_redeliveries:
                state["dead_letter"].append((topic, subscriber, request_id, payload))
                queue.popleft()
                attempts = 0
                continue
            if config.redelivery_delay > 0:
                yield ctx.sleep(config.redelivery_delay)

    return handler
