"""Publish-subscribe substrate: a broker built as a microservice.

Both hops of the pattern (publisher -> broker, broker -> subscriber)
are ordinary HTTP calls through Gremlin sidecars, so pub-sub flows are
fault-injectable and observable with the same primitives as
request-response — observation O2 of the paper made concrete.
"""

from repro.bus.broker import (
    BrokerConfig,
    DELIVER_PREFIX,
    PUBLISH_PREFIX,
    broker_definition,
    publish,
)

__all__ = [
    "BrokerConfig",
    "DELIVER_PREFIX",
    "PUBLISH_PREFIX",
    "broker_definition",
    "publish",
]
