"""Fault-injection rules: the data-plane interface of Table 2.

A :class:`FaultRule` is the unit the control plane sends to Gremlin
agents.  The three fault types and their mandatory parameters follow
the paper exactly:

=========  =================================  =========================================
Interface  Mandatory parameters               Effect
=========  =================================  =========================================
Abort      Src, Dst, Error, Pattern           Return application error ``Error`` to Src
                                              (``Error=-1``: TCP-level reset, no
                                              application error code — abrupt crash)
Delay      Src, Dst, Interval, Pattern        Hold matching messages for ``Interval``
Modify     Src, Dst, ReplaceBytes, Pattern    Rewrite matched bytes with ReplaceBytes
=========  =================================  =========================================

Non-mandatory parameters (with defaults): ``on`` (which message
direction the rule applies to, default ``request``), ``probability``
(fraction of matching messages acted on, default 1.0), and
``max_matches`` — a budget after which the rule goes inert, which is
how the paper's Fig 6 experiment "aborted 100 consecutive requests ...
then immediately delayed the next 100" is expressed.

``skip_matches`` lets the first K structural matches pass untouched
before the fault starts applying.  Combined with an exact-ID pattern
and ``max_matches=1`` it addresses a *single invocation* — the K-th
call on one edge within one request — which is how the exploration
layer (:mod:`repro.explore`) replays an execution-index coordinate as
exactly one injection.  Skipping is deterministic: a skipped match
consumes no probability draw and no budget.

For Abort and Delay, ``pattern`` is a glob over the request ID (the
paper's ``Pattern='test-*'``).  For Modify, following Table 2's
wording, ``pattern`` is the byte pattern to match *inside the message
body*; the optional ``id_pattern`` scopes which flows are eligible.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import threading
import typing as _t

from repro.errors import RuleValidationError
from repro.util import parse_duration

__all__ = [
    "FaultType",
    "MessageDirection",
    "FaultRule",
    "abort",
    "delay",
    "fresh_rule_ids",
    "modify",
]

_rule_ids = itertools.count(1)
_rule_id_scope = threading.local()


def _next_rule_id() -> int:
    counter = getattr(_rule_id_scope, "counter", None)
    return next(_rule_ids if counter is None else counter)


@contextlib.contextmanager
def fresh_rule_ids() -> _t.Iterator[None]:
    """Number rules 1, 2, ... within this block (per thread).

    Rule ids normally come off an interpreter-global counter, which is
    fine interactively but makes ids depend on everything the process
    ran before.  Harnesses that promise bit-for-bit reproducible output
    — the campaign executor and the fuzz battery, on any fleet backend
    and worker count — wrap each isolated execution in this scope so
    the ids (and the ``Rule#N`` strings embedded in attributions and
    repro artifacts) depend only on the recipe itself.  Scopes nest;
    the previous counter is restored on exit.
    """
    previous = getattr(_rule_id_scope, "counter", None)
    _rule_id_scope.counter = itertools.count(1)
    try:
        yield
    finally:
        _rule_id_scope.counter = previous


class FaultType:
    """The three data-plane fault primitives."""

    ABORT = "abort"
    DELAY = "delay"
    MODIFY = "modify"

    ALL = (ABORT, DELAY, MODIFY)


class MessageDirection:
    """Which direction of the exchange a rule applies to."""

    REQUEST = "request"
    RESPONSE = "response"

    ALL = (REQUEST, RESPONSE)


#: Error code meaning "terminate the connection at the TCP level and
#: return no application error code" (paper Section 5, Crash recipe).
TCP_RESET = -1
__all__.append("TCP_RESET")


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One validated fault-injection rule.

    Instances are immutable; runtime state (probability draws, budget
    consumption) lives in the agent's matcher, so the same rule object
    can be installed on many agents (one per source-service instance,
    per paper Figure 3).
    """

    src: str
    dst: str
    fault_type: str
    pattern: str = "test-*"
    on: str = MessageDirection.REQUEST
    probability: float = 1.0
    error: _t.Optional[int] = None
    interval: _t.Optional[float] = None
    replace_bytes: _t.Optional[bytes] = None
    id_pattern: _t.Optional[str] = None
    max_matches: _t.Optional[int] = None
    skip_matches: int = 0
    rule_id: int = dataclasses.field(default_factory=_next_rule_id)

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise RuleValidationError("rule requires non-empty src and dst service names")
        if self.fault_type not in FaultType.ALL:
            raise RuleValidationError(
                f"unknown fault type {self.fault_type!r}; expected one of {FaultType.ALL}"
            )
        if self.on not in MessageDirection.ALL:
            raise RuleValidationError(
                f"rule 'on' must be one of {MessageDirection.ALL}, got {self.on!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise RuleValidationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_matches is not None and self.max_matches < 1:
            raise RuleValidationError(f"max_matches must be >= 1, got {self.max_matches}")
        if self.skip_matches < 0:
            raise RuleValidationError(f"skip_matches must be >= 0, got {self.skip_matches}")
        if self.fault_type == FaultType.ABORT:
            if self.error is None:
                raise RuleValidationError("Abort rule requires the Error parameter")
            if self.error != TCP_RESET and not 400 <= self.error <= 599:
                raise RuleValidationError(
                    f"Abort error must be -1 (TCP reset) or an HTTP 4xx/5xx code,"
                    f" got {self.error}"
                )
        elif self.fault_type == FaultType.DELAY:
            if self.interval is None:
                raise RuleValidationError("Delay rule requires the Interval parameter")
            if self.interval < 0:
                raise RuleValidationError(f"Delay interval must be >= 0, got {self.interval}")
        elif self.fault_type == FaultType.MODIFY:
            if self.replace_bytes is None:
                raise RuleValidationError("Modify rule requires the ReplaceBytes parameter")

    # -- accessors ------------------------------------------------------------

    @property
    def flow_pattern(self) -> str:
        """The request-ID glob selecting which flows this rule touches.

        For Abort/Delay that is ``pattern``; for Modify, ``pattern``
        matches body bytes instead and flow scoping comes from
        ``id_pattern`` (defaulting to match-all).
        """
        if self.fault_type == FaultType.MODIFY:
            return self.id_pattern if self.id_pattern is not None else "*"
        return self.pattern

    @property
    def search_bytes(self) -> bytes:
        """For Modify rules: the byte pattern matched inside the body.

        ``pattern`` is stored latin-1-decoded so the dataclass field
        stays a string across all three fault types; this property
        recovers the original bytes losslessly.
        """
        if self.fault_type != FaultType.MODIFY:
            raise RuleValidationError("search_bytes is only defined for Modify rules")
        return self.pattern.encode("latin-1")

    @property
    def is_reset(self) -> bool:
        """True for an Abort with ``Error=-1`` (TCP-level reset)."""
        return self.fault_type == FaultType.ABORT and self.error == TCP_RESET

    def describe(self) -> str:
        """Compact form used in observation records' ``fault_applied``."""
        if self.fault_type == FaultType.ABORT:
            detail = "reset" if self.is_reset else str(self.error)
            return f"abort({detail})"
        if self.fault_type == FaultType.DELAY:
            return f"delay({self.interval:g})"
        return "modify"

    def __str__(self) -> str:
        return (
            f"Rule#{self.rule_id}[{self.describe()} {self.src}->{self.dst}"
            f" on={self.on} pattern={self.flow_pattern!r} p={self.probability:g}"
            + (f" budget={self.max_matches}" if self.max_matches is not None else "")
            + (f" skip={self.skip_matches}" if self.skip_matches else "")
            + "]"
        )


# -- convenience constructors matching the paper's primitive names -----------


def abort(
    src: str,
    dst: str,
    error: int = 503,
    pattern: str = "test-*",
    on: str = MessageDirection.REQUEST,
    probability: float = 1.0,
    max_matches: _t.Optional[int] = None,
    skip_matches: int = 0,
) -> FaultRule:
    """``Abort(Src, Dst, Error, Pattern)`` — Table 2's first primitive.

    ``error=-1`` terminates the connection at the TCP level.
    """
    return FaultRule(
        src=src,
        dst=dst,
        fault_type=FaultType.ABORT,
        error=error,
        pattern=pattern,
        on=on,
        probability=probability,
        max_matches=max_matches,
        skip_matches=skip_matches,
    )


def delay(
    src: str,
    dst: str,
    interval: _t.Union[str, float],
    pattern: str = "test-*",
    on: str = MessageDirection.REQUEST,
    probability: float = 1.0,
    max_matches: _t.Optional[int] = None,
    skip_matches: int = 0,
) -> FaultRule:
    """``Delay(Src, Dst, Interval, Pattern)`` — Table 2's second primitive.

    ``interval`` accepts the paper's string syntax (``'100ms'``,
    ``'1h'``) or plain seconds.
    """
    return FaultRule(
        src=src,
        dst=dst,
        fault_type=FaultType.DELAY,
        interval=parse_duration(interval),
        pattern=pattern,
        on=on,
        probability=probability,
        max_matches=max_matches,
        skip_matches=skip_matches,
    )


def modify(
    src: str,
    dst: str,
    pattern: _t.Union[str, bytes],
    replace_bytes: _t.Union[str, bytes],
    on: str = MessageDirection.RESPONSE,
    probability: float = 1.0,
    id_pattern: _t.Optional[str] = None,
    max_matches: _t.Optional[int] = None,
) -> FaultRule:
    """``Modify(Src, Dst, ReplaceBytes, Pattern)`` — Table 2's third primitive.

    ``pattern`` is the byte pattern matched inside the message body;
    matched bytes are replaced with ``replace_bytes``.  Defaults to the
    response direction, matching the paper's FakeSuccess example
    (rewriting a successful reply's payload to trigger input-validation
    bugs in the caller).
    """
    search = pattern.encode("utf-8") if isinstance(pattern, str) else bytes(pattern)
    replacement = (
        replace_bytes.encode("utf-8") if isinstance(replace_bytes, str) else bytes(replace_bytes)
    )
    return FaultRule(
        src=src,
        dst=dst,
        fault_type=FaultType.MODIFY,
        pattern=search.decode("latin-1"),
        replace_bytes=replacement,
        on=on,
        probability=probability,
        id_pattern=id_pattern,
        max_matches=max_matches,
    )
