"""Fault-action implementations for the Gremlin agent.

Small pure helpers the proxy calls once the matcher has selected a
rule: synthesizing abort responses and rewriting message bytes.  The
Delay action is pure timing and lives inline in the proxy (it is just a
virtual-clock sleep); Abort-with-reset is a transport action the proxy
performs on the caller's connection.
"""

from __future__ import annotations

from repro.agent.rules import FaultRule, FaultType
from repro.errors import RuleValidationError
from repro.http.message import HttpRequest, HttpResponse

__all__ = ["synthesize_abort_response", "modify_request", "modify_response"]


def synthesize_abort_response(rule: FaultRule, request: HttpRequest) -> HttpResponse:
    """Build the application-level error an Abort rule returns to Src.

    E.g. an Overload recipe's ``Abort(..., Error=503)`` makes the agent
    answer ``503 Service Unavailable`` itself, without the request ever
    reaching the destination service (paper O2: an overloaded server is
    emulated by intercepting the request and responding with 503).
    """
    if rule.fault_type != FaultType.ABORT or rule.is_reset:
        raise RuleValidationError(f"rule {rule} does not synthesize an HTTP response")
    assert rule.error is not None
    return HttpResponse.error(
        rule.error,
        f"injected by gremlin rule #{rule.rule_id}",
        request_id=request.request_id,
    )


def modify_request(rule: FaultRule, request: HttpRequest) -> HttpRequest:
    """Apply a Modify rule to a request body (returns a new request)."""
    modified = request.copy()
    modified.body = _rewrite(rule, modified.body)
    return modified


def modify_response(rule: FaultRule, response: HttpResponse) -> HttpResponse:
    """Apply a Modify rule to a response body (returns a new response).

    This is the FakeSuccess recipe's mechanism: the callee's ``200 OK``
    payload is rewritten (e.g. ``key`` -> ``badkey``) to exercise the
    caller's input validation.
    """
    modified = response.copy()
    modified.body = _rewrite(rule, modified.body)
    return modified


def _rewrite(rule: FaultRule, body: bytes) -> bytes:
    if rule.fault_type != FaultType.MODIFY:
        raise RuleValidationError(f"rule {rule} is not a Modify rule")
    assert rule.replace_bytes is not None
    return body.replace(rule.search_bytes, rule.replace_bytes)
