"""The agent's out-of-band control channel.

Paper Section 6: "It can be configured via a REST API by the control
plane."  We model that REST hop faithfully enough for the Figure 7
benchmark to measure real work: each rule crosses the channel as a
JSON document — serialized by the control plane, parsed and
re-validated by the agent side — so programming N agents costs N
serialize/parse/validate round trips of real CPU time, just as N REST
calls would.
"""

from __future__ import annotations

import json
import typing as _t

from repro.agent.proxy import GremlinAgent
from repro.agent.rules import FaultRule
from repro.errors import RuleValidationError

__all__ = ["rule_to_wire", "rule_from_wire", "AgentControlChannel"]

_WIRE_FIELDS = (
    "src",
    "dst",
    "fault_type",
    "pattern",
    "on",
    "probability",
    "error",
    "interval",
    "id_pattern",
    "max_matches",
    "skip_matches",
)


def rule_to_wire(rule: FaultRule) -> str:
    """Serialize a rule to its JSON wire form."""
    doc: dict[str, _t.Any] = {field: getattr(rule, field) for field in _WIRE_FIELDS}
    if rule.replace_bytes is not None:
        doc["replace_bytes"] = rule.replace_bytes.decode("latin-1")
    return json.dumps(doc)


def rule_from_wire(wire: str) -> FaultRule:
    """Parse and re-validate a rule from its JSON wire form.

    Validation happens inside :class:`FaultRule` itself, so a malformed
    document is rejected at the agent boundary with
    :class:`RuleValidationError` — never silently installed.
    """
    try:
        doc = json.loads(wire)
    except json.JSONDecodeError as exc:
        raise RuleValidationError(f"malformed rule document: {exc}") from exc
    if not isinstance(doc, dict):
        raise RuleValidationError(f"rule document must be an object, got {type(doc).__name__}")
    replace_bytes = doc.pop("replace_bytes", None)
    if replace_bytes is not None:
        replace_bytes = replace_bytes.encode("latin-1")
    known = {key: value for key, value in doc.items() if key in _WIRE_FIELDS}
    unknown = set(doc) - set(_WIRE_FIELDS)
    if unknown:
        raise RuleValidationError(f"unknown rule fields: {sorted(unknown)}")
    return FaultRule(replace_bytes=replace_bytes, **known)


class AgentControlChannel:
    """Control-plane handle to one agent's REST API."""

    def __init__(self, agent: GremlinAgent) -> None:
        self.agent = agent
        #: Count of control calls made, for orchestration accounting.
        self.calls = 0

    @property
    def owner_instance(self) -> str:
        """The instance whose sidecar this channel controls."""
        return self.agent.owner_instance

    def push_rule(self, rule: FaultRule) -> int:
        """Install one rule (full wire round trip); returns its ID."""
        self.calls += 1
        parsed = rule_from_wire(rule_to_wire(rule))
        installed = self.agent.install_rule(parsed)
        return installed.rule.rule_id

    def push_rules(self, rules: _t.Sequence[FaultRule]) -> list[int]:
        """Install a batch of rules; returns their IDs."""
        return [self.push_rule(rule) for rule in rules]

    def clear(self) -> None:
        """Remove all rules from the agent."""
        self.calls += 1
        self.agent.clear_rules()

    def list_rules(self) -> list[FaultRule]:
        """Fetch the agent's installed rules."""
        self.calls += 1
        return self.agent.list_rules()

    def __repr__(self) -> str:
        return f"<AgentControlChannel {self.owner_instance} calls={self.calls}>"
