"""The Gremlin data plane: fault rules, matchers, the sidecar proxy.

This package is half of the paper's contribution (Section 4.1): network
proxies that intercept, log, and manipulate messages exchanged between
microservices, exposing the Abort/Delay/Modify interface of Table 2 to
the control plane.
"""

from repro.agent.control_api import AgentControlChannel, rule_from_wire, rule_to_wire
from repro.agent.faults import modify_request, modify_response, synthesize_abort_response
from repro.agent.matcher import (
    InstalledRule,
    LinearMatcher,
    PrefixIndexMatcher,
    RuleMatcher,
    TableMatcher,
    make_matcher,
)
from repro.agent.proxy import GremlinAgent
from repro.agent.rules import (
    TCP_RESET,
    FaultRule,
    FaultType,
    MessageDirection,
    abort,
    delay,
    modify,
)

__all__ = [
    "AgentControlChannel",
    "FaultRule",
    "FaultType",
    "GremlinAgent",
    "InstalledRule",
    "LinearMatcher",
    "MessageDirection",
    "PrefixIndexMatcher",
    "RuleMatcher",
    "TCP_RESET",
    "TableMatcher",
    "abort",
    "delay",
    "make_matcher",
    "modify",
    "modify_request",
    "modify_response",
    "rule_from_wire",
    "rule_to_wire",
    "synthesize_abort_response",
]
