"""The Gremlin agent: a sidecar service proxy with fault injection.

Deployment model (paper Section 6, sidecar approach): the agent runs
"in the same container or virtual machine as the microservice" and
handles its *outbound* calls.  The microservice is configured with
loopback mappings ``localhost:<port> -> <dependency service>``; the
agent listens on those loopback ports, resolves the dependency's
physical instances through the service registry, round-robins across
them, and forwards traffic — intercepting, logging, and manipulating
messages according to the installed fault rules.

Per proxied call the agent:

1. decodes the request, extracts the propagated request ID;
2. consults the matcher for a request-direction rule and applies it
   (Delay: hold the message; Abort: synthesize the error response or
   reset the caller's connection without ever contacting the callee;
   Modify: rewrite body bytes);
3. emits a request observation record;
4. forwards to a callee instance and awaits the reply;
5. consults the matcher for a response-direction rule and applies it;
6. updates the request record with the outcome and emits a reply
   record carrying caller-observed latency, the Gremlin-injected delay
   (for ``withRule`` accounting), and the fault action applied.

Upstream transport failures are translated the way real sidecar
proxies (Envoy) translate them: connection refused/unreachable becomes
a synthesized ``503`` to the caller; an upstream reset resets the
caller's connection.
"""

from __future__ import annotations

import typing as _t

from repro.agent.faults import modify_request, modify_response, synthesize_abort_response
from repro.agent.matcher import InstalledRule, RuleMatcher, make_matcher
from repro.agent.rules import FaultRule, FaultType
from repro.errors import (
    CodecError,
    ConnectionRefusedError_,
    ConnectionResetError_,
    ConnectionTimeoutError,
    HostUnreachableError,
    OrchestrationError,
    ServiceNotFoundError,
)
from repro.http import status as http_status
from repro.http.codec import decode_request, decode_response, encode_request, encode_response
from repro.http.headers import SPAN_ID_HEADER
from repro.http.message import HttpRequest, HttpResponse
from repro.logstore.pipeline import LogPipeline
from repro.logstore.query import compile_id_pattern
from repro.logstore.record import ObservationKind, ObservationRecord
from repro.network.address import Address
from repro.network.transport import ConnectionEnd, Host, Listener
from repro.registry.registry import ServiceRegistry
from repro.simulation.kernel import Simulator
from repro.simulation.resources import ChannelClosed
from repro.tracing import SpanIdGenerator

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.metrics import Counter, Histogram, MetricsRegistry

__all__ = ["GremlinAgent"]


class GremlinAgent:
    """One sidecar proxy instance, colocated with one service instance."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        owner_service: str,
        owner_instance: str,
        registry: ServiceRegistry,
        pipeline: LogPipeline,
        matcher_strategy: str = "table",
        canary_pattern: str = "test-*",
        metrics: "_t.Optional[MetricsRegistry]" = None,
        trace_spans: bool = True,
    ) -> None:
        self.sim = sim
        self.host = host
        self.owner_service = owner_service
        self.owner_instance = owner_instance
        self.registry = registry
        self.pipeline = pipeline
        #: Span minting: every proxied exchange gets a span ID unique to
        #: this sidecar, and the forwarded request carries it so the
        #: next hop records it as the parent.  ``trace_spans=False``
        #: disables minting entirely (the overhead-ablation baseline).
        self._span_ids: _t.Optional[SpanIdGenerator] = (
            SpanIdGenerator(owner_instance) if trace_spans else None
        )
        self.metrics = metrics
        # Per-destination metric handles, cached so the proxy hot path
        # pays one dict hit instead of a registry lookup per message.
        self._edge_requests: dict[str, "Counter"] = {}
        self._edge_latency: dict[str, "Histogram"] = {}
        self._fault_counters: dict[tuple[str, str], "Counter"] = {}
        self.matcher: RuleMatcher = make_matcher(
            matcher_strategy, rng=sim.rng(f"agent/{owner_instance}")
        )
        #: Request-ID glob selecting flows routed to canary instances of
        #: a destination when any are registered (paper Section 9's
        #: state-cleanup proposal).  ``None`` disables canary routing.
        self.canary_pattern = canary_pattern
        self._canary_regex = compile_id_pattern(canary_pattern)
        self._routes: dict[int, str] = {}
        self._listeners: dict[int, Listener] = {}
        self._round_robin: dict[tuple[str, str], int] = {}
        #: dst service -> mirror fraction; production requests to that
        #: destination are duplicated onto its shadow (canary) pool.
        self._mirrors: dict[str, float] = {}
        self._mirror_seq = 0
        self.started = False
        #: Total messages proxied, for benchmarks and sanity checks.
        self.proxied = 0
        #: Mirror copies emitted / skipped (no shadow pool deployed).
        self.mirrored = 0
        self.mirror_skipped = 0

    # -- dataplane wiring ------------------------------------------------------

    def add_route(self, local_port: int, dst_service: str) -> None:
        """Map a loopback port to a destination service.

        This is the agent-side of the paper's sidecar configuration
        file: ``localhost:<port> - (list of <remotehost>[:<port>])``,
        with the remote list resolved live from the registry.
        """
        if local_port in self._routes:
            raise OrchestrationError(
                f"agent {self.owner_instance}: port {local_port} already routed"
                f" to {self._routes[local_port]!r}"
            )
        self._routes[local_port] = dst_service
        if self.started:
            self._bind(local_port, dst_service)

    def route_address(self, dst_service: str) -> Address:
        """The loopback address the owner should dial for ``dst_service``."""
        for port, service in self._routes.items():
            if service == dst_service:
                return Address("localhost", port)
        raise OrchestrationError(
            f"agent {self.owner_instance} has no route to {dst_service!r}"
        )

    @property
    def routes(self) -> dict[int, str]:
        """Copy of the loopback-port -> destination-service map."""
        return dict(self._routes)

    def start(self) -> "GremlinAgent":
        """Bind every configured loopback route."""
        if self.started:
            return self
        self.started = True
        for port, service in self._routes.items():
            self._bind(port, service)
        return self

    def stop(self) -> None:
        """Unbind all routes; the owner's calls start failing, exactly
        like killing a real sidecar."""
        self.started = False
        for listener in self._listeners.values():
            listener.close()
        self._listeners.clear()

    def _bind(self, port: int, dst_service: str) -> None:
        listener = self.host.listen(port)
        listener.on_connect(
            lambda conn, dst=dst_service: self.sim.process(
                self._serve(conn, dst), name=f"{self.owner_instance}/proxy->{dst}"
            )
        )
        self._listeners[port] = listener

    # -- shadow-traffic mirroring (paper Section 1: shadow deployments) ----------

    def add_mirror(self, dst_service: str, fraction: float = 1.0) -> None:
        """Duplicate production traffic toward ``dst_service`` onto its
        shadow pool.

        Each mirrored copy gets a fresh ``shadow-*`` request ID and is
        sent, fire-and-forget, to the destination's canary instances;
        the response is consumed and discarded, so users never see the
        shadow path.  Because the copy flows through this agent's
        matcher like any other message, faults scoped to ``shadow-*``
        IDs apply to mirrored traffic only — resilience testing against
        real production request shapes with zero user impact.

        ``fraction`` samples that share of production requests
        (deterministically, from the simulator's seeded RNG).
        """
        if not 0.0 < fraction <= 1.0:
            raise OrchestrationError(f"mirror fraction must be in (0, 1], got {fraction}")
        if dst_service not in self._routes.values():
            raise OrchestrationError(
                f"agent {self.owner_instance} has no route to {dst_service!r}"
            )
        self._mirrors[dst_service] = fraction

    def remove_mirror(self, dst_service: str) -> None:
        """Stop mirroring traffic toward ``dst_service``."""
        self._mirrors.pop(dst_service, None)

    def _maybe_mirror(self, dst_service: str, request: HttpRequest) -> None:
        fraction = self._mirrors.get(dst_service)
        if fraction is None:
            return
        request_id = request.request_id
        if request_id is not None and self._canary_regex is not None:
            if self._canary_regex.match(request_id):
                return  # never mirror test traffic (it may be faulted already)
        if request_id is not None and request_id.startswith("shadow-"):
            return  # never mirror a mirror
        if fraction < 1.0 and self.sim.rng(f"mirror/{self.owner_instance}").random() >= fraction:
            return
        targets = self.registry.canary_addresses(dst_service)
        if not targets:
            self.mirror_skipped += 1
            return
        self._mirror_seq += 1
        copy = request.copy()
        copy.request_id = f"shadow-{request_id or 'untagged'}-{self._mirror_seq}"
        self.mirrored += 1
        self.sim.process(
            self._mirror_one(dst_service, copy, targets),
            name=f"{self.owner_instance}/mirror->{dst_service}",
        )

    def _mirror_one(
        self, dst_service: str, request: HttpRequest, targets: list[Address]
    ) -> _t.Generator:
        """Deliver one mirrored copy: matched, logged, fire-and-forget."""
        start = self.sim.now
        request_id = request.request_id
        record = ObservationRecord(
            timestamp=start,
            kind=ObservationKind.REQUEST,
            src=self.owner_service,
            dst=dst_service,
            src_instance=self.owner_instance,
            request_id=request_id,
            method=request.method,
            uri=request.uri,
        )
        injected_delay = 0.0
        hit = self.matcher.match(dst_service, FaultType_REQUEST, request_id, body=request.body)
        if hit is not None:
            rule = hit.rule
            hit.consume()
            record.fault_applied = rule.describe()
            if rule.fault_type == FaultType.DELAY:
                assert rule.interval is not None
                injected_delay = rule.interval
                yield self.sim.timeout(rule.interval)
            elif rule.fault_type == FaultType.ABORT:
                record.error = None if not rule.is_reset else "reset"
                if not rule.is_reset:
                    record.status = rule.error
                record.injected_delay = injected_delay
                self.pipeline.emit(record)
                return  # aborted before reaching the shadow
            elif rule.fault_type == FaultType.MODIFY:
                request = modify_request(rule, request)
        record.injected_delay = injected_delay
        self.pipeline.emit(record)

        key = (dst_service, "shadow")
        index = self._round_robin.get(key, 0)
        self._round_robin[key] = index + 1
        target = targets[index % len(targets)]
        try:
            upstream: ConnectionEnd = yield self.host.connect(target)
            upstream.send(encode_request(request))
            reply_payload = yield upstream.recv()
            upstream.close()
            response = decode_response(reply_payload)
        except Exception as exc:  # noqa: BLE001 - shadow failures never propagate
            self._emit_reply_error(record, start, injected_delay, "shadow-error", False)
            return
        record.status = response.status
        self._emit_reply(record, start, injected_delay, response.status, False)

    # -- control-plane interface (paper Table 2) ---------------------------------

    def install_rule(self, rule: FaultRule) -> InstalledRule:
        """Install one fault rule; rejects rules for other sources.

        The Failure Orchestrator only sends an agent rules whose
        ``src`` is the agent's owner, but the agent re-validates — a
        defensive check real control planes rely on.
        """
        if rule.src != self.owner_service:
            raise OrchestrationError(
                f"agent of {self.owner_service!r} got a rule for src {rule.src!r}"
            )
        if rule.dst not in self._routes.values():
            raise OrchestrationError(
                f"agent {self.owner_instance} has no route to rule destination {rule.dst!r}"
            )
        return self.matcher.install(rule)

    def remove_rule(self, rule_id: int) -> bool:
        """Remove a rule by ID; True if found."""
        return self.matcher.remove(rule_id)

    def clear_rules(self) -> None:
        """Remove every installed rule (end-of-test cleanup)."""
        self.matcher.clear()

    def list_rules(self) -> list[FaultRule]:
        """The installed rules, in installation order."""
        return [installed.rule for installed in self.matcher.rules]

    # -- metrics emission -----------------------------------------------------------

    def _count_request(self, dst_service: str) -> None:
        counter = self._edge_requests.get(dst_service)
        if counter is None:
            assert self.metrics is not None
            counter = self._edge_requests[dst_service] = self.metrics.counter(
                "gremlin_requests_total", src=self.owner_service, dst=dst_service
            )
        counter.inc()

    def _count_fault(self, dst_service: str, fault: str) -> None:
        key = (dst_service, fault)
        counter = self._fault_counters.get(key)
        if counter is None:
            assert self.metrics is not None
            counter = self._fault_counters[key] = self.metrics.counter(
                "gremlin_faults_injected_total",
                src=self.owner_service,
                dst=dst_service,
                fault=fault,
            )
        counter.inc()

    def _observe_latency(self, dst_service: str, latency: float) -> None:
        histogram = self._edge_latency.get(dst_service)
        if histogram is None:
            assert self.metrics is not None
            histogram = self._edge_latency[dst_service] = self.metrics.histogram(
                "gremlin_request_latency_seconds",
                src=self.owner_service,
                dst=dst_service,
            )
        histogram.observe(latency)

    # -- proxy data path ------------------------------------------------------------

    def _serve(self, conn: ConnectionEnd, dst_service: str) -> _t.Generator:
        while True:
            try:
                payload = yield conn.recv()
            except (ChannelClosed, ConnectionResetError_):
                break
            closed = yield from self._proxy_one(conn, dst_service, payload)
            if closed or conn.closed:
                break

    def _proxy_one(
        self, conn: ConnectionEnd, dst_service: str, payload: bytes
    ) -> _t.Generator[_t.Any, _t.Any, bool]:
        """Proxy one request/response exchange; True if conn was closed."""
        self.proxied += 1
        start = self.sim.now
        try:
            request = decode_request(payload)
        except CodecError as exc:
            self._safe_send(conn, HttpResponse.error(http_status.BAD_REQUEST, str(exc)))
            return False
        request_id = request.request_id
        # Shadow mirroring happens before fault matching (and before
        # span minting, so mirror copies stay outside the causal tree):
        # the copy runs its own matcher pass under its shadow-* identity.
        # Guarded so the no-mirror common case pays one dict check, not
        # a method call per proxied message.
        if self._mirrors:
            self._maybe_mirror(dst_service, request)
        span_id: _t.Optional[str] = None
        parent_span: _t.Optional[str] = None
        if self._span_ids is not None:
            # The inbound span header names the *enclosing* call (set by
            # the previous hop's sidecar, propagated by the owner);
            # overwrite it with this span's ID so the callee parents its
            # own downstream calls here.
            parent_span = request.headers.get(SPAN_ID_HEADER)
            span_id = self._span_ids.next_id()
            request.headers[SPAN_ID_HEADER] = span_id
        if self.metrics is not None:
            self._count_request(dst_service)
        record = ObservationRecord(
            timestamp=start,
            kind=ObservationKind.REQUEST,
            src=self.owner_service,
            dst=dst_service,
            src_instance=self.owner_instance,
            request_id=request_id,
            method=request.method,
            uri=request.uri,
            span_id=span_id,
            parent_span=parent_span,
        )
        injected_delay = 0.0
        faults: list[str] = []

        # --- request-direction rule ---
        hit = self.matcher.match(
            dst_service, FaultType_REQUEST, request_id, body=request.body
        )
        if hit is not None:
            rule = hit.rule
            hit.consume()
            faults.append(rule.describe())
            if self.metrics is not None:
                self._count_fault(dst_service, rule.describe())
            if rule.fault_type == FaultType.DELAY:
                assert rule.interval is not None
                injected_delay += rule.interval
                yield self.sim.timeout(rule.interval)
            elif rule.fault_type == FaultType.ABORT:
                record.fault_applied = "+".join(faults)
                if rule.is_reset:
                    record.error = "reset"
                    self.pipeline.emit(record)
                    self._emit_reply_error(record, start, injected_delay, "reset", True)
                    conn.reset()
                    return True
                response = synthesize_abort_response(rule, request)
                record.status = response.status
                record.injected_delay = injected_delay
                self.pipeline.emit(record)
                self._emit_reply(
                    record, start, injected_delay, response.status, gremlin_generated=True
                )
                self._safe_send(conn, response)
                return False
            elif rule.fault_type == FaultType.MODIFY:
                request = modify_request(rule, request)

        record.fault_applied = "+".join(faults) if faults else None
        record.injected_delay = injected_delay
        self.pipeline.emit(record)

        # --- forward to a physical instance of the destination ---
        try:
            response = yield from self._forward(dst_service, request)
        except (ConnectionRefusedError_, HostUnreachableError, ServiceNotFoundError) as exc:
            record.error = "refused"
            response = HttpResponse.error(
                http_status.SERVICE_UNAVAILABLE,
                f"upstream connect failed: {exc}",
                request_id=request_id,
            )
            record.status = response.status
            self._emit_reply_error(record, start, injected_delay, "refused", False)
            self._safe_send(conn, response)
            return False
        except ConnectionTimeoutError:
            record.error = "timeout"
            self._emit_reply_error(record, start, injected_delay, "timeout", False)
            conn.reset()
            return True
        except (ConnectionResetError_, ChannelClosed):
            record.error = "reset"
            self._emit_reply_error(record, start, injected_delay, "reset", False)
            conn.reset()
            return True

        # --- response-direction rule ---
        gremlin_generated = False
        hit = self.matcher.match(
            dst_service, FaultType_RESPONSE, request_id, body=response.body
        )
        if hit is not None:
            rule = hit.rule
            hit.consume()
            faults.append(rule.describe())
            if self.metrics is not None:
                self._count_fault(dst_service, rule.describe())
            if rule.fault_type == FaultType.DELAY:
                assert rule.interval is not None
                injected_delay += rule.interval
                yield self.sim.timeout(rule.interval)
            elif rule.fault_type == FaultType.ABORT:
                if rule.is_reset:
                    record.fault_applied = "+".join(faults)
                    record.error = "reset"
                    self._emit_reply_error(record, start, injected_delay, "reset", True)
                    conn.reset()
                    return True
                response = synthesize_abort_response(rule, request)
                gremlin_generated = True
            elif rule.fault_type == FaultType.MODIFY:
                response = modify_response(rule, response)

        record.fault_applied = "+".join(faults) if faults else None
        record.status = response.status
        record.injected_delay = injected_delay
        self._emit_reply(record, start, injected_delay, response.status, gremlin_generated)
        self._safe_send(conn, response)
        return False

    def _forward(
        self, dst_service: str, request: HttpRequest
    ) -> _t.Generator[_t.Any, _t.Any, HttpResponse]:
        pool = "main"
        addresses: list = []
        if self._canary_regex is not None:
            request_id = request.request_id
            if request_id is not None and self._canary_regex.match(request_id):
                addresses = self.registry.canary_addresses(dst_service)
                pool = "canary"
        if not addresses:
            pool = "main"
            addresses = self.registry.addresses(dst_service)
        key = (dst_service, pool)
        index = self._round_robin.get(key, 0)
        self._round_robin[key] = index + 1
        target = addresses[index % len(addresses)]
        upstream: ConnectionEnd = yield self.host.connect(target)
        try:
            upstream.send(encode_request(request))
            reply_payload = yield upstream.recv()
        finally:
            if not upstream.closed:
                upstream.close()
        return decode_response(reply_payload)

    # -- observation emission --------------------------------------------------------

    def _emit_reply(
        self,
        request_record: ObservationRecord,
        start: float,
        injected_delay: float,
        status: int,
        gremlin_generated: bool,
    ) -> None:
        latency = self.sim.now - start
        if self.metrics is not None:
            self._observe_latency(request_record.dst, latency)
        self.pipeline.emit(
            ObservationRecord(
                timestamp=self.sim.now,
                kind=ObservationKind.REPLY,
                src=request_record.src,
                dst=request_record.dst,
                src_instance=request_record.src_instance,
                request_id=request_record.request_id,
                method=request_record.method,
                uri=request_record.uri,
                status=status,
                latency=latency,
                injected_delay=injected_delay,
                fault_applied=request_record.fault_applied,
                gremlin_generated=gremlin_generated,
                span_id=request_record.span_id,
                parent_span=request_record.parent_span,
            )
        )

    def _emit_reply_error(
        self,
        request_record: ObservationRecord,
        start: float,
        injected_delay: float,
        error: str,
        gremlin_generated: bool,
    ) -> None:
        latency = self.sim.now - start
        if self.metrics is not None:
            self._observe_latency(request_record.dst, latency)
        self.pipeline.emit(
            ObservationRecord(
                timestamp=self.sim.now,
                kind=ObservationKind.REPLY,
                src=request_record.src,
                dst=request_record.dst,
                src_instance=request_record.src_instance,
                request_id=request_record.request_id,
                method=request_record.method,
                uri=request_record.uri,
                status=request_record.status,
                latency=latency,
                injected_delay=injected_delay,
                fault_applied=request_record.fault_applied,
                gremlin_generated=gremlin_generated,
                error=error,
                span_id=request_record.span_id,
                parent_span=request_record.parent_span,
            )
        )

    def _safe_send(self, conn: ConnectionEnd, response: HttpResponse) -> None:
        """Send a response unless the caller already went away."""
        if conn.closed:
            return
        try:
            conn.send(encode_response(response))
        except ConnectionResetError_:
            pass

    def __repr__(self) -> str:
        return (
            f"<GremlinAgent {self.owner_instance} routes={self._routes}"
            f" rules={len(self.matcher)}>"
        )


# Direction aliases keep the hot path free of attribute lookups on the
# FaultType/MessageDirection namespace classes.
FaultType_REQUEST = "request"
FaultType_RESPONSE = "response"
