"""Rule-matching engines for the Gremlin agent.

The agent compares every proxied message against its installed rules;
this sits in-line with the data path, so matching cost is the proxy's
overhead (paper Figure 8 measures the worst case: a request compared
against all rules without matching any).

Two interchangeable strategies are provided:

* :class:`LinearMatcher` — the paper's baseline: compiled-regex scan
  over all rules in installation order, first match wins.
* :class:`PrefixIndexMatcher` — the optimization the paper suggests
  ("structured (e.g., prefix-based ...) request IDs"): rules are
  bucketed by ``(dst, direction)`` and by the literal prefix of their
  ID glob, so non-matching traffic usually touches zero regexes.
* :class:`TableMatcher` — a precompiled ``(dst, direction)`` dispatch
  table rebuilt on every install/remove.  Rule changes are rare (a
  recipe installs its rules once) while proxied messages are constant,
  so the per-message cost collapses to a single dict probe — and for
  the overwhelmingly common agent with zero or irrelevant rules, that
  probe misses and the message proceeds untouched.

All strategies share runtime state handling: a per-rule match *budget*
(``max_matches``) and probabilistic application, drawn from the
simulator's seeded RNG when one is attached (falling back to a local
PRNG for standalone wall-clock benchmarks).  The scan-and-draw loop
lives in exactly one place (:meth:`RuleMatcher._scan`), so every
strategy consumes probability draws identically by construction.
"""

from __future__ import annotations

import fnmatch
import random as _random
import re
import typing as _t

from repro.agent.rules import FaultRule, FaultType
from repro.errors import RuleValidationError

__all__ = [
    "InstalledRule",
    "RuleMatcher",
    "LinearMatcher",
    "PrefixIndexMatcher",
    "TableMatcher",
]


class InstalledRule:
    """A rule plus its per-agent runtime state (budget, regex, stats)."""

    def __init__(self, rule: FaultRule) -> None:
        self.rule = rule
        self.regex = _compile_glob(rule.flow_pattern)
        self.remaining: int | None = rule.max_matches
        #: Structural matches still to let through untouched before the
        #: fault arms (``skip_matches``).  A skipped match takes no
        #: probability draw and burns no budget, so skipping is
        #: deterministic and invisible to the RNG-draw sequence of later
        #: rules — the property the exploration layer's per-invocation
        #: coordinates rely on.
        self.to_skip = rule.skip_matches
        #: Installation order within the owning matcher (first-match-wins).
        self.order = 0
        #: Messages this rule structurally matched (before probability).
        self.matched = 0
        #: Messages the fault action was actually applied to.
        self.applied = 0

    @property
    def exhausted(self) -> bool:
        """True once the match budget is consumed (rule inert)."""
        return self.remaining is not None and self.remaining <= 0

    def matches_id(self, request_id: str | None) -> bool:
        """Structural flow match against the request ID."""
        if self.regex is None:
            return True
        if request_id is None:
            return False
        return self.regex.match(request_id) is not None

    def consume(self) -> None:
        """Burn one unit of budget after the action is applied."""
        self.applied += 1
        if self.remaining is not None:
            self.remaining -= 1

    def __repr__(self) -> str:
        return f"<InstalledRule {self.rule} applied={self.applied}>"


def _compile_glob(pattern: str) -> re.Pattern | None:
    if pattern == "*":
        return None  # match-all needs no regex work
    return re.compile(fnmatch.translate(pattern))


class RuleMatcher:
    """Interface shared by the matching strategies."""

    def __init__(self, rng: _t.Optional[_random.Random] = None) -> None:
        self._rng = rng if rng is not None else _random.Random(0)
        self._installed: list[InstalledRule] = []
        # Monotonic install counter: orders must stay unique across
        # remove/install cycles so first-match-wins never ties (reusing
        # len(installed) would hand a re-installed rule an existing
        # order after a removal).
        self._order_counter = 0

    # -- rule management ----------------------------------------------------

    def install(self, rule: FaultRule) -> InstalledRule:
        """Install a rule; returns its runtime handle."""
        installed = InstalledRule(rule)
        installed.order = self._order_counter
        self._order_counter += 1
        self._installed.append(installed)
        self._index(installed)
        return installed

    def remove(self, rule_id: int) -> bool:
        """Remove by rule ID; True if something was removed.

        Surgical: only the removed rules' own index entries are
        deleted — the rest of the index (and every surviving rule's
        install order) is untouched.
        """
        removed = [ir for ir in self._installed if ir.rule.rule_id == rule_id]
        if not removed:
            return False
        self._installed = [ir for ir in self._installed if ir.rule.rule_id != rule_id]
        for installed in removed:
            self._unindex(installed)
        return True

    def clear(self) -> None:
        """Remove every rule."""
        self._installed.clear()
        self._clear_index()

    @property
    def rules(self) -> list[InstalledRule]:
        """All installed rules in installation order."""
        return list(self._installed)

    def __len__(self) -> int:
        return len(self._installed)

    # -- matching ------------------------------------------------------------

    def match(
        self,
        dst: str,
        direction: str,
        request_id: str | None,
        body: bytes | None = None,
    ) -> InstalledRule | None:
        """First applicable rule for a message, or None.

        Applies, in order: structural match (dst, direction, flow
        pattern, and for Modify the body byte pattern), budget check,
        then the probability draw.  A structural match that loses its
        probability draw still counts toward ``matched`` statistics but
        does not consume budget — mirroring the paper's Overload recipe
        where 25%/75% splits act on disjoint subsets of one stream.

        This method is the ONLY place a probability draw happens, and
        every strategy routes through it: a draw is taken iff a rule
        survives the structural checks and has ``probability < 1``, in
        strict installation order.  Two matchers seeded with the same
        RNG therefore consume draws identically regardless of strategy
        — the invariant the differential fuzzer's strategy-equivalence
        check relies on (pinned by tests/property/test_matcher_props).
        """
        if not self._installed:
            # Draw-neutral fast path: no rules means no candidates and
            # no probability draws, so skipping the scan machinery is
            # invisible to the strategy-equivalence invariant.  Most
            # agents in a recipe carry zero rules, and this check sits
            # on every proxied message.
            return None
        return self._scan(
            self._structural_candidates(dst, direction, request_id),
            request_id,
            body,
        )

    def _scan(
        self,
        candidates: _t.Iterable[InstalledRule],
        request_id: str | None,
        body: bytes | None,
    ) -> InstalledRule | None:
        """The shared scan-and-draw loop over structural candidates.

        Every strategy funnels through this one loop (candidates must
        arrive in installation order), so budget accounting and the RNG
        draw discipline cannot diverge between strategies.
        """
        rng = self._rng
        for installed in candidates:
            if installed.exhausted:
                continue
            if not installed.matches_id(request_id):
                continue
            if installed.rule.fault_type == FaultType.MODIFY:
                if body is None or installed.rule.search_bytes not in body:
                    continue
            installed.matched += 1
            if installed.to_skip > 0:
                installed.to_skip -= 1
                continue
            probability = installed.rule.probability
            if probability < 1.0 and rng.random() >= probability:
                continue
            return installed
        return None

    # -- strategy hooks ----------------------------------------------------------

    def _structural_candidates(
        self, dst: str, direction: str, request_id: str | None
    ) -> _t.Iterable[InstalledRule]:
        """Rules that could structurally match, in installation order.

        ``request_id`` is a pre-filter hint only: a strategy may use it
        to skip rules that cannot match (prefix bucketing), but must
        never return candidates out of install order, because order
        determines first-match-wins *and* RNG-draw sequence.
        """
        raise NotImplementedError

    def _index(self, installed: InstalledRule) -> None:
        raise NotImplementedError

    def _unindex(self, installed: InstalledRule) -> None:
        raise NotImplementedError

    def _clear_index(self) -> None:
        raise NotImplementedError


class LinearMatcher(RuleMatcher):
    """The paper's baseline: scan every rule per message.

    Worst-case cost is O(rules) regex evaluations per message — the
    curve Figure 8 plots for 1/5/10 installed rules.
    """

    def _structural_candidates(
        self, dst: str, direction: str, request_id: str | None
    ) -> _t.Iterable[InstalledRule]:
        return (
            installed
            for installed in self._installed
            if installed.rule.dst == dst and installed.rule.on == direction
        )

    def _index(self, installed: InstalledRule) -> None:  # no index to maintain
        pass

    def _unindex(self, installed: InstalledRule) -> None:  # no index to maintain
        pass

    def _clear_index(self) -> None:  # no index to maintain
        pass


class _PrefixBucket:
    """Per-(dst, direction) index of rules by literal ID prefix."""

    def __init__(self) -> None:
        self.by_prefix: dict[str, list[InstalledRule]] = {}
        self.prefix_lengths: set[int] = set()
        #: Rules whose glob starts with a wildcard (no usable prefix).
        self.unprefixed: list[InstalledRule] = []

    def add(self, installed: InstalledRule) -> None:
        prefix = _literal_prefix(installed.rule.flow_pattern)
        if prefix:
            self.by_prefix.setdefault(prefix, []).append(installed)
            self.prefix_lengths.add(len(prefix))
        else:
            self.unprefixed.append(installed)

    def discard(self, installed: InstalledRule) -> None:
        """Drop one rule's entry, pruning emptied prefix groups.

        Only the affected group is touched; surviving entries keep
        their list positions (and hence their install order).
        """
        prefix = _literal_prefix(installed.rule.flow_pattern)
        if not prefix:
            if installed in self.unprefixed:
                self.unprefixed.remove(installed)
            return
        group = self.by_prefix.get(prefix)
        if group is None or installed not in group:
            return
        group.remove(installed)
        if not group:
            del self.by_prefix[prefix]
            # Another prefix of the same length may still exist.
            self.prefix_lengths = {len(p) for p in self.by_prefix}

    @property
    def empty(self) -> bool:
        """True once no rule is indexed here."""
        return not self.by_prefix and not self.unprefixed

    def candidates(self, request_id: str | None) -> list[InstalledRule]:
        """Rules that could match ``request_id``, in install order."""
        if request_id is None:
            return self.unprefixed
        found: list[InstalledRule] = []
        for length in self.prefix_lengths:
            bucket = self.by_prefix.get(request_id[:length])
            if bucket:
                found.extend(bucket)
        if self.unprefixed:
            found.extend(self.unprefixed)
            found.sort(key=lambda installed: installed.order)
        elif len(self.prefix_lengths) > 1:
            found.sort(key=lambda installed: installed.order)
        return found


class PrefixIndexMatcher(RuleMatcher):
    """Bucketed matcher exploiting structured request IDs.

    Rules are grouped by ``(dst, direction)`` and, within a group,
    hashed by the literal prefix of their ID glob (the text before the
    first wildcard).  A non-matching request ID is dismissed with one
    dict lookup per distinct prefix *length* — flat in the number of
    installed rules — which is the optimization the paper's Section 7.2
    suggests ("structured (e.g., prefix-based ...) request IDs") for
    reducing proxy overhead.  First-match-wins ordering is preserved by
    sorting the (usually tiny) candidate list by installation order.
    """

    def __init__(self, rng: _t.Optional[_random.Random] = None) -> None:
        self._buckets: dict[tuple[str, str], _PrefixBucket] = {}
        super().__init__(rng)

    def _structural_candidates(
        self, dst: str, direction: str, request_id: str | None
    ) -> _t.Iterable[InstalledRule]:
        # The bucket pre-filters by literal ID prefix; the shared
        # match() loop in the base class still runs the full structural
        # checks and owns the probability draw, so both strategies
        # consume RNG draws identically by construction.
        bucket = self._buckets.get((dst, direction))
        if bucket is None:
            return ()
        return bucket.candidates(request_id)

    def _index(self, installed: InstalledRule) -> None:
        key = (installed.rule.dst, installed.rule.on)
        self._buckets.setdefault(key, _PrefixBucket()).add(installed)

    def _unindex(self, installed: InstalledRule) -> None:
        key = (installed.rule.dst, installed.rule.on)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(installed)
        if bucket.empty:
            del self._buckets[key]

    def _clear_index(self) -> None:
        self._buckets.clear()


class TableMatcher(RuleMatcher):
    """Precompiled per-deployment dispatch table.

    The full candidate list for every ``(dst, direction)`` slot is
    recomputed whenever the rule set changes — installs and removes are
    control-plane events, orders of magnitude rarer than proxied
    messages — so the per-message structural pre-filter is one dict
    probe returning a ready-made tuple in installation order.  The
    common no-relevant-rules case is a dict miss: nothing is scanned,
    no regex runs, no draw is taken.
    """

    def __init__(self, rng: _t.Optional[_random.Random] = None) -> None:
        self._table: dict[tuple[str, str], tuple[InstalledRule, ...]] = {}
        super().__init__(rng)

    def match(
        self,
        dst: str,
        direction: str,
        request_id: str | None,
        body: bytes | None = None,
    ) -> InstalledRule | None:
        # Single dict hit; the shared _scan keeps draw discipline
        # identical to the other strategies (see RuleMatcher.match).
        candidates = self._table.get((dst, direction))
        if candidates is None:
            return None
        return self._scan(candidates, request_id, body)

    def _structural_candidates(
        self, dst: str, direction: str, request_id: str | None
    ) -> _t.Iterable[InstalledRule]:
        return self._table.get((dst, direction), ())

    def _recompile(self) -> None:
        table: dict[tuple[str, str], list[InstalledRule]] = {}
        for installed in self._installed:
            key = (installed.rule.dst, installed.rule.on)
            table.setdefault(key, []).append(installed)
        self._table = {key: tuple(group) for key, group in table.items()}

    def _index(self, installed: InstalledRule) -> None:
        self._recompile()

    def _unindex(self, installed: InstalledRule) -> None:
        self._recompile()

    def _clear_index(self) -> None:
        self._table.clear()


def _literal_prefix(pattern: str) -> str:
    """Longest wildcard-free prefix of a glob (``"test-*"`` -> ``"test-"``)."""
    for index, char in enumerate(pattern):
        if char in "*?[":
            return pattern[:index]
    return pattern


def make_matcher(strategy: str, rng: _t.Optional[_random.Random] = None) -> RuleMatcher:
    """Factory: ``"linear"``, ``"prefix"``, or ``"table"``."""
    if strategy == "linear":
        return LinearMatcher(rng)
    if strategy == "prefix":
        return PrefixIndexMatcher(rng)
    if strategy == "table":
        return TableMatcher(rng)
    raise RuleValidationError(f"unknown matcher strategy {strategy!r}")


__all__.append("make_matcher")
